// Variable-size string keys for the generic <K, V, Compare> instantiations.
//
// The containers copy keys by value into immutable nodes (treap leaves,
// chunk arrays, route nodes), so the key type must be trivially copyable and
// trivially destructible — a std::string would need constructor/destructor
// runs the flat chunk layout (flexible array member, raw byte copies) cannot
// provide.  StrKey is a 16-byte POD view:
//
//   - short strings (<= kInlineCapacity bytes) are stored inline (SSO);
//   - longer strings are interned once into an immortal, deduplicated pool
//     backed by alloc::pool_alloc size classes, and the key stores
//     {pointer, length}.  Interned storage is never freed (same lifetime
//     policy as the slab registry), so copies of a key never dangle.
//
// Two tag values sit outside the string domain: minus_infinity() orders
// before every string and plus_infinity() after every string.  They are the
// KeyTraits<StrKey>::min()/max() bounds, and — per the repo-wide key-domain
// contract — are themselves ordinary insertable keys.
#pragma once

#include <compare>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace cats {

class StrKey {
 public:
  /// Longest string stored without touching the intern pool.
  static constexpr std::size_t kInlineCapacity = 14;

  /// Zero-initialised key: the empty string (inline, length 0).
  constexpr StrKey() : raw_{} { raw_[kTagByte] = kTagString; }

  /// Builds a key over `text`, interning it if it does not fit inline.
  static StrKey make(std::string_view text);

  /// The bounds of the key domain (see KeyTraits<StrKey>).
  static constexpr StrKey minus_infinity() {
    StrKey k;
    k.raw_[kTagByte] = kTagMinusInf;
    return k;
  }
  static constexpr StrKey plus_infinity() {
    StrKey k;
    k.raw_[kTagByte] = kTagPlusInf;
    return k;
  }

  bool is_minus_infinity() const { return raw_[kTagByte] == kTagMinusInf; }
  bool is_plus_infinity() const { return raw_[kTagByte] == kTagPlusInf; }
  bool is_inline() const {
    return raw_[kTagByte] == kTagString && raw_[kLenByte] != kInternedMark;
  }

  /// The string contents; empty for the infinities.
  std::string_view view() const {
    if (raw_[kTagByte] != kTagString) return {};
    if (raw_[kLenByte] != kInternedMark) {
      return {reinterpret_cast<const char*>(raw_), raw_[kLenByte]};
    }
    const char* data;
    std::uint32_t length;
    std::memcpy(&data, raw_, sizeof(data));
    std::memcpy(&length, raw_ + 8, sizeof(length));
    return {data, length};
  }

  /// Diagnostic rendering: the string itself, or "-inf"/"+inf".
  std::string format() const;

  friend bool operator==(const StrKey& a, const StrKey& b) {
    if (a.raw_[kTagByte] != b.raw_[kTagByte]) return false;
    if (a.raw_[kTagByte] != kTagString) return true;
    // Interned storage is deduplicated, so equal long strings share one
    // pointer and the 16-byte representations match; inline ditto.
    if (std::memcmp(a.raw_, b.raw_, sizeof(a.raw_)) == 0) return true;
    return a.view() == b.view();
  }

  friend bool operator<(const StrKey& a, const StrKey& b) {
    if (a.raw_[kTagByte] != b.raw_[kTagByte]) {
      return a.raw_[kTagByte] < b.raw_[kTagByte];
    }
    if (a.raw_[kTagByte] != kTagString) return false;
    return a.view() < b.view();
  }
  friend bool operator>(const StrKey& a, const StrKey& b) { return b < a; }
  friend bool operator<=(const StrKey& a, const StrKey& b) { return !(b < a); }
  friend bool operator>=(const StrKey& a, const StrKey& b) { return !(a < b); }

 private:
  // raw_[15]: tag (0 = -inf, 1 = string, 2 = +inf); tag order IS key order.
  // raw_[14]: inline length 0..14, or kInternedMark.
  // inline:   raw_[0..13] hold the characters.
  // interned: raw_[0..7] hold a const char* (memcpy'd — alignment-free),
  //           raw_[8..11] the length as uint32.
  static constexpr std::size_t kTagByte = 15;
  static constexpr std::size_t kLenByte = 14;
  static constexpr unsigned char kInternedMark = 0xFF;
  static constexpr unsigned char kTagMinusInf = 0;
  static constexpr unsigned char kTagString = 1;
  static constexpr unsigned char kTagPlusInf = 2;

  unsigned char raw_[16];
};

static_assert(sizeof(StrKey) == 16);
static_assert(std::is_trivially_copyable_v<StrKey>);
static_assert(std::is_trivially_destructible_v<StrKey>);

/// Number of distinct long strings currently interned (test hook).
std::size_t strkey_interned_count();

template <>
struct KeyTraits<StrKey> {
  static StrKey min() { return StrKey::minus_infinity(); }
  static StrKey max() { return StrKey::plus_infinity(); }
  static std::string format(const StrKey& key) { return key.format(); }
  static long long heat_coord(const StrKey& key) {
    // Big-endian prefix of the string, shifted into the non-negative range:
    // monotone over the first 7 bytes, which is all a heatmap label needs.
    if (key.is_minus_infinity()) return std::numeric_limits<long long>::min();
    if (key.is_plus_infinity()) return std::numeric_limits<long long>::max();
    const std::string_view text = key.view();
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < 7; ++i) {
      packed = (packed << 8) |
               (i < text.size() ? static_cast<unsigned char>(text[i]) : 0);
    }
    return static_cast<long long>(packed);
  }
};

}  // namespace cats
