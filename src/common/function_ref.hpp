// Non-owning type-erased callable reference (a minimal std::function_ref).
//
// Range queries hand each item in the range to a caller-supplied visitor.
// Templating every container on the visitor type would force the whole
// algorithm into headers; std::function allocates.  FunctionRef erases the
// callable into two words and is safe here because visitors never outlive
// the call that supplies them.
#pragma once

#include <type_traits>
#include <utility>

#include "common/types.hpp"

namespace cats {

template <class Signature>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f) noexcept {  // NOLINT: implicit by design, mirrors P0792
    if constexpr (std::is_function_v<std::remove_reference_t<F>>) {
      // Plain functions: store the function pointer itself (a data-pointer
      // round trip for function pointers is fine on all targets we build).
      object_ = reinterpret_cast<void*>(&f);
      invoke_ = [](void* object, Args... args) -> R {
        return reinterpret_cast<std::remove_reference_t<F>*>(object)(
            std::forward<Args>(args)...);
      };
    } else {
      object_ = const_cast<void*>(static_cast<const void*>(&f));
      invoke_ = [](void* object, Args... args) -> R {
        return (*static_cast<std::remove_reference_t<F>*>(object))(
            std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

/// Visitor signature shared by all range-query implementations, generic in
/// the key/value types of the container being scanned.
template <class K, class V>
using BasicItemVisitor = FunctionRef<void(K, V)>;

/// Visitor for the default (integer-key) instantiations.
using ItemVisitor = BasicItemVisitor<Key, Value>;

}  // namespace cats
