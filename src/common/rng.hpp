// Small, fast pseudo-random number generators for workload generation and
// randomized algorithms.
//
// Benchmark threads draw millions of keys per second; std::mt19937_64 is
// unnecessarily heavy for that inner loop.  xoshiro256** (Blackman & Vigna)
// passes BigCrush, has a 2^256-1 period and costs a handful of cycles per
// draw.  SplitMix64 is used for seeding and for deterministic hash-derived
// priorities.
#pragma once

#include <cstdint>

namespace cats {

/// SplitMix64 step: returns a well-mixed 64-bit output and advances `state`.
/// Also usable as a strong integer hash by passing the value to mix.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Stateless strong mixing of a 64-bit value (Stafford variant 13).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// xoshiro256** generator.  Not thread safe; give each thread its own
/// instance seeded with a distinct seed.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    // SplitMix64 expansion as recommended by the xoshiro authors: never
    // seed the state with all zeroes.
    for (auto& word : state_) word = splitmix64(seed);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound).  Uses the 128-bit multiply trick (Lemire)
  /// which avoids the modulo and is bias-free enough for workload generation.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform draw in [lo, hi] (inclusive).
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw: true with probability `permille`/1000.
  bool chance_permille(std::uint32_t permille) noexcept {
    return next_below(1000) < permille;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cats
