// Bounded exponential backoff for CAS retry loops.
//
// On a failed CAS the losing thread re-reads a line another core just wrote;
// retrying immediately causes a coherence storm.  Spinning a short,
// exponentially growing number of pause instructions drains the storm while
// keeping the loop lock-free (the bound is finite and small).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cats {

/// Emit one CPU relax hint (x86 `pause`, otherwise a compiler barrier).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Exponential backoff capped at `kMaxSpins` pause instructions per round.
class Backoff {
 public:
  void spin() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ < kMaxSpins) current_ *= 2;
  }

  void reset() noexcept { current_ = kMinSpins; }

 private:
  static constexpr std::uint32_t kMinSpins = 4;
  static constexpr std::uint32_t kMaxSpins = 1024;
  std::uint32_t current_ = kMinSpins;
};

}  // namespace cats
