#include "common/strkey.hpp"

#include <mutex>
#include <unordered_set>

#include "alloc/pool.hpp"

namespace cats {
namespace {

// The intern pool: one immortal copy per distinct long string.  Character
// storage comes from the slab pool's size classes (oversize strings fall
// through to the heap inside pool_alloc) and is never freed — identical
// lifetime policy to the slab registry itself, which keeps every copied
// StrKey's pointer valid forever and makes dedup safe to rely on for the
// fast equality path.  Interning is a key-construction cost, not a
// tree-operation cost: hot paths compare and copy 16-byte values only.
struct InternTable {
  std::mutex mutex;
  std::unordered_set<std::string_view> entries;
};

InternTable& intern_table() {
  static InternTable* table = new InternTable;  // immortal, like the pool
  return *table;
}

std::string_view intern(std::string_view text) {
  InternTable& table = intern_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  const auto it = table.entries.find(text);
  if (it != table.entries.end()) return *it;
  char* storage = static_cast<char*>(alloc::pool_alloc(text.size()));
  std::memcpy(storage, text.data(), text.size());
  const std::string_view stored{storage, text.size()};
  table.entries.insert(stored);
  return stored;
}

}  // namespace

StrKey StrKey::make(std::string_view text) {
  StrKey key;
  if (text.size() <= kInlineCapacity) {
    std::memcpy(key.raw_, text.data(), text.size());
    key.raw_[kLenByte] = static_cast<unsigned char>(text.size());
    return key;
  }
  const std::string_view stored = intern(text);
  const char* data = stored.data();
  const auto length = static_cast<std::uint32_t>(stored.size());
  std::memcpy(key.raw_, &data, sizeof(data));
  std::memcpy(key.raw_ + 8, &length, sizeof(length));
  key.raw_[kLenByte] = kInternedMark;
  return key;
}

std::string StrKey::format() const {
  if (is_minus_infinity()) return "-inf";
  if (is_plus_infinity()) return "+inf";
  return std::string(view());
}

std::size_t strkey_interned_count() {
  InternTable& table = intern_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  return table.entries.size();
}

}  // namespace cats
