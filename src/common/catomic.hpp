// catomic.hpp -- simulation-aware atomic / thread shims.
//
// Every shared-memory primitive in the concurrent core (src/lfca, src/reclaim,
// src/treap, src/chunk, src/alloc, src/common) goes through cats::atomic<T>
// and cats::sim_thread instead of std::atomic / std::thread.
//
//   CATS_SIM=OFF (default): pure aliases.  cats::atomic<T> IS std::atomic<T>
//     and the plain-access / allocation hooks are empty inline functions, so
//     the production build is bit-identical to the pre-sim code.  The
//     bench-smoke CI gate enforces that this stays perf-neutral.
//
//   CATS_SIM=ON: cats::atomic<T> wraps std::atomic<T> and announces every
//     operation to the cooperative simulator (src/sim) before executing it.
//     The simulator serialises threads (one runs at a time), explores
//     interleavings (DFS with sleep sets + preemption bounds, or seeded
//     random walks), maintains vector clocks for a happens-before race
//     detector, and records release/acquire pairings actually observed.
//     Outside an active exploration (sim::thread_active() == false) every
//     wrapper degrades to the plain std:: operation, so ordinary tests still
//     run in a CATS_SIM=ON build.
//
// The hook functions live in namespace cats::sim and are implemented by the
// cats_sim library (src/sim/runtime.cpp).  This header only declares them.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

#if !defined(CATS_SIM_ENABLED)
#define CATS_SIM_ENABLED 0
#endif

#if !CATS_SIM_ENABLED

namespace cats {

// ---------------------------------------------------------------------------
// Passthrough mode: zero-cost aliases.
// ---------------------------------------------------------------------------

template <class T>
using atomic = std::atomic<T>;

using sim_thread = std::thread;

// Instrumented plain (non-atomic) node-field accesses.  In passthrough mode
// these compile down to the raw read / write.
template <class T>
inline T sim_plain_read(const T& v) noexcept {
  return v;
}

template <class T, class U>
inline void sim_plain_write(T& dst, U&& v) {
  dst = static_cast<T>(std::forward<U>(v));
}

// Allocation tracking (so the simulator can treat frees as range writes and
// quarantine reclaimed memory for the duration of an execution).
inline void sim_note_alloc(void*, std::size_t) noexcept {}

// Returns true when the simulator took ownership of the block (deferred the
// actual release until the end of the current execution).  Passthrough mode
// never takes ownership.
inline bool sim_quarantine_free(void*, std::size_t,
                                void (*)(void*, std::size_t)) noexcept {
  return false;
}

// Guard / retire scheduling-point hooks (EBR enter/exit, Domain::retire).
inline void sim_point_event(const char*, const void*) noexcept {}

// Deterministic per-thread RNG seeding under simulation.  0 == not simulated.
inline bool sim_thread_active() noexcept { return false; }
inline std::uint64_t sim_deterministic_seed() noexcept { return 0; }
inline std::uint64_t sim_execution_generation() noexcept { return 0; }

}  // namespace cats

#else  // CATS_SIM_ENABLED

#include <source_location>

namespace cats::sim {

// --- hooks implemented by src/sim/runtime.cpp ------------------------------

// True iff the calling thread is managed by an active exploration.
bool thread_active() noexcept;

enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kRmw,       // successful RMW (exchange, fetch_*, CAS that won)
  kRmwFail,   // CAS that lost (pure load with the failure order)
  kSpawn,
  kJoinWait,
  kThreadExit,
  kEvent,     // guard enter/exit, retire, ... (named scheduling points)
};

// Scheduling point: announces the next operation of the calling thread and
// blocks until the scheduler hands the token back.  Must be called before
// the operation executes.
void atomic_pre(const void* addr, bool is_write, std::memory_order order,
                const std::source_location& loc);

// Post-op bookkeeping (vector clocks, observed release/acquire pairs, trace
// annotation).  Runs while the calling thread still holds the token.
void atomic_commit(const void* addr, OpKind kind, std::memory_order order,
                   const std::source_location& loc);

// Instrumented plain access: race-checked against the vector-clock state,
// but NOT a scheduling point (happens-before races are schedule-independent
// within an execution; exploration adds the coverage).
void plain_access(const void* addr, std::size_t size, bool is_write,
                  const std::source_location& loc);

// Named scheduling point (guard enter/exit, retire).
void event_point(const char* tag, const void* addr,
                 const std::source_location& loc);

// Allocation tracking + quarantine.
void note_alloc(void* p, std::size_t size) noexcept;
bool quarantine_free(void* p, std::size_t size, void (*fr)(void*, std::size_t));

// Deterministic seeding support (see lfca thread_rng()).
std::uint64_t deterministic_seed() noexcept;
std::uint64_t execution_generation() noexcept;

// sim_thread plumbing.
int thread_register_child();
void thread_spawn_point(int child, const std::source_location& loc);
void thread_enter(int self);
void thread_exit(int self);
void thread_join_wait(int child);

// Thrown at scheduling points once an execution blows its step budget, so
// cooperative threads unwind instead of spinning forever.
struct Abort {};

}  // namespace cats::sim

namespace cats {

// ---------------------------------------------------------------------------
// Simulation mode: instrumented wrapper.  All operations take the same
// memory-order arguments as std::atomic and forward them verbatim; the
// defaulted std::source_location captures the call site for traces.
// ---------------------------------------------------------------------------

namespace detail {

// Failure order derived from a success order, per [atomics.types.operations].
constexpr std::memory_order cas_failure_order(std::memory_order mo) noexcept {
  switch (mo) {
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_release:
      return std::memory_order_relaxed;
    default:
      return mo;
  }
}

}  // namespace detail

template <class T>
class atomic {
 public:
  constexpr atomic() noexcept = default;
  constexpr atomic(T v) noexcept : v_(v) {}
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst,
         const std::source_location& loc =
             std::source_location::current()) const {
    if (!sim::thread_active()) return v_.load(mo);
    sim::atomic_pre(&v_, /*is_write=*/false, mo, loc);
    T r = v_.load(mo);
    sim::atomic_commit(&v_, sim::OpKind::kLoad, mo, loc);
    return r;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst,
             const std::source_location& loc =
                 std::source_location::current()) {
    if (!sim::thread_active()) {
      v_.store(v, mo);
      return;
    }
    sim::atomic_pre(&v_, /*is_write=*/true, mo, loc);
    v_.store(v, mo);
    sim::atomic_commit(&v_, sim::OpKind::kStore, mo, loc);
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst,
             const std::source_location& loc =
                 std::source_location::current()) {
    if (!sim::thread_active()) return v_.exchange(v, mo);
    sim::atomic_pre(&v_, /*is_write=*/true, mo, loc);
    T r = v_.exchange(v, mo);
    sim::atomic_commit(&v_, sim::OpKind::kRmw, mo, loc);
    return r;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst,
                               const std::source_location& loc =
                                   std::source_location::current()) {
    return cas_impl(expected, desired, mo, detail::cas_failure_order(mo), loc);
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order succ,
                               std::memory_order fail,
                               const std::source_location& loc =
                                   std::source_location::current()) {
    return cas_impl(expected, desired, succ, fail, loc);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst,
                             const std::source_location& loc =
                                 std::source_location::current()) {
    // Under the simulator a weak CAS never fails spuriously: spurious
    // failures would make replay nondeterministic.
    return cas_impl(expected, desired, mo, detail::cas_failure_order(mo), loc);
  }

  template <class U = T>
  U fetch_add(U d, std::memory_order mo = std::memory_order_seq_cst,
              const std::source_location& loc =
                  std::source_location::current()) {
    if (!sim::thread_active()) return v_.fetch_add(d, mo);
    sim::atomic_pre(&v_, /*is_write=*/true, mo, loc);
    U r = v_.fetch_add(d, mo);
    sim::atomic_commit(&v_, sim::OpKind::kRmw, mo, loc);
    return r;
  }

  template <class U = T>
  U fetch_sub(U d, std::memory_order mo = std::memory_order_seq_cst,
              const std::source_location& loc =
                  std::source_location::current()) {
    if (!sim::thread_active()) return v_.fetch_sub(d, mo);
    sim::atomic_pre(&v_, /*is_write=*/true, mo, loc);
    U r = v_.fetch_sub(d, mo);
    sim::atomic_commit(&v_, sim::OpKind::kRmw, mo, loc);
    return r;
  }

 private:
  bool cas_impl(T& expected, T desired, std::memory_order succ,
                std::memory_order fail, const std::source_location& loc) {
    if (!sim::thread_active())
      return v_.compare_exchange_strong(expected, desired, succ, fail);
    sim::atomic_pre(&v_, /*is_write=*/true, succ, loc);
    bool ok = v_.compare_exchange_strong(expected, desired, succ, fail);
    sim::atomic_commit(&v_, ok ? sim::OpKind::kRmw : sim::OpKind::kRmwFail,
                       ok ? succ : fail, loc);
    return ok;
  }

  std::atomic<T> v_;
};

// ---------------------------------------------------------------------------
// sim_thread: std::thread that registers with the scheduler when created
// inside an active exploration.  Created outside one, it behaves exactly
// like std::thread.
// ---------------------------------------------------------------------------

class sim_thread {
 public:
  sim_thread() noexcept = default;

  template <class F, class... Args>
  explicit sim_thread(F&& f, Args&&... args) {
    if (!sim::thread_active()) {
      t_ = std::thread(std::forward<F>(f), std::forward<Args>(args)...);
      return;
    }
    sim_id_ = sim::thread_register_child();
    int child = sim_id_;
    auto body = [child, fn = std::bind(std::forward<F>(f),
                                       std::forward<Args>(args)...)]() mutable {
      sim::thread_enter(child);
      try {
        fn();
      } catch (const sim::Abort&) {
        // Step-budget abort: unwind quietly; the runtime already recorded it.
      }
      sim::thread_exit(child);
    };
    t_ = std::thread(std::move(body));
    sim::thread_spawn_point(child, std::source_location::current());
  }

  sim_thread(sim_thread&& o) noexcept
      : t_(std::move(o.t_)), sim_id_(o.sim_id_) {
    o.sim_id_ = -1;
  }
  sim_thread& operator=(sim_thread&& o) noexcept {
    if (this != &o) {
      if (t_.joinable()) std::terminate();
      t_ = std::move(o.t_);
      sim_id_ = o.sim_id_;
      o.sim_id_ = -1;
    }
    return *this;
  }
  sim_thread(const sim_thread&) = delete;
  sim_thread& operator=(const sim_thread&) = delete;

  ~sim_thread() {
    // Simulated threads auto-join on destruction so a step-budget abort can
    // unwind the scenario stack without tripping std::terminate.
    if (sim_id_ >= 0 && t_.joinable()) join();
  }

  bool joinable() const noexcept { return t_.joinable(); }

  void join() {
    if (sim_id_ >= 0) sim::thread_join_wait(sim_id_);
    t_.join();
  }

 private:
  std::thread t_;
  int sim_id_ = -1;
};

// --- plain-field instrumentation & allocation hooks ------------------------

template <class T>
inline T sim_plain_read(const T& v,
                        const std::source_location& loc =
                            std::source_location::current()) {
  if (sim::thread_active())
    sim::plain_access(&v, sizeof(T), /*is_write=*/false, loc);
  return v;
}

template <class T, class U>
inline void sim_plain_write(T& dst, U&& v,
                            const std::source_location& loc =
                                std::source_location::current()) {
  if (sim::thread_active())
    sim::plain_access(&dst, sizeof(T), /*is_write=*/true, loc);
  dst = static_cast<T>(std::forward<U>(v));
}

inline void sim_note_alloc(void* p, std::size_t size) noexcept {
  if (sim::thread_active()) sim::note_alloc(p, size);
}

inline bool sim_quarantine_free(void* p, std::size_t size,
                                void (*fr)(void*, std::size_t)) {
  if (!sim::thread_active()) return false;
  return sim::quarantine_free(p, size, fr);
}

inline void sim_point_event(const char* tag, const void* addr,
                            const std::source_location& loc =
                                std::source_location::current()) {
  if (sim::thread_active()) sim::event_point(tag, addr, loc);
}

inline bool sim_thread_active() noexcept { return sim::thread_active(); }
inline std::uint64_t sim_deterministic_seed() noexcept {
  return sim::deterministic_seed();
}
inline std::uint64_t sim_execution_generation() noexcept {
  return sim::execution_generation();
}

}  // namespace cats

#endif  // CATS_SIM_ENABLED
