// Sense-reversing spin barrier used to start benchmark threads simultaneously.
//
// std::barrier parks threads in the kernel; for throughput measurements we
// want every thread to leave the barrier within a few cycles of each other,
// so the benchmark harness spins instead.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/backoff.hpp"
#include "common/catomic.hpp"

namespace cats {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until `parties` threads have arrived.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      Backoff backoff;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        backoff.spin();
      }
    }
  }

 private:
  const std::size_t parties_;
  cats::atomic<std::size_t> remaining_;
  cats::atomic<bool> sense_{false};
};

}  // namespace cats
