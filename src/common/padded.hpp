// Cache-line padding helpers.
//
// Per-thread counters and flags that live in arrays must not share cache
// lines, or the coherence traffic from one thread's increments slows every
// other thread (false sharing).  `Padded<T>` rounds each element up to a
// multiple of the destructive interference size.
#pragma once

#include <cstddef>
#include <new>

namespace cats {

// Fixed rather than std::hardware_destructive_interference_size: the value
// feeds alignas() in headers, and letting it vary with -mtune would make the
// ABI depend on compiler flags (GCC warns about exactly this).
inline constexpr std::size_t kCacheLine = 64;

/// Wraps T so that consecutive array elements occupy distinct cache lines.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace cats
