// Fundamental key/value types shared by every data structure in this
// repository.
//
// The paper describes sets of integer keys and notes that sets "can trivially
// be modified to become key-value stores".  We build the key-value variant
// directly, and (since the leaf containers are swappable ordered maps) keep
// the key type generic: the containers and the LFCA tree are templated on
// <K, V, Compare>, with the historical <int64_t, uint64_t, std::less>
// instantiation remaining the default fast path.
//
// Key-domain contract (see DESIGN.md "Key/value genericity"): every key value
// of K — including KeyTraits<K>::min() and KeyTraits<K>::max() — is an
// ordinary, insertable key in every structure, in every build type.  The
// traits bounds exist so full-range scans can be spelled
// range_query(min(), max()); they are not reserved sentinels.  Structures
// that need internal head/tail sentinels (the skiplists) tag their sentinel
// nodes out-of-band instead of stealing key values.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace cats {

/// Key type used by the default instantiation of every ordered map here.
using Key = std::int64_t;

/// Value payload type.  Wide enough to hold a pointer to an external object.
using Value = std::uint64_t;

/// Smallest representable default key.  Range queries over
/// [kKeyMin, kKeyMax] cover the whole container.
inline constexpr Key kKeyMin = std::numeric_limits<Key>::min();

/// Largest representable default key.
inline constexpr Key kKeyMax = std::numeric_limits<Key>::max();

/// A single key/value pair as stored in leaf containers.
template <class K, class V>
struct BasicItem {
  K key;
  V value;

  friend bool operator==(const BasicItem&, const BasicItem&) = default;
};

/// The default (integer-key) item type.
using Item = BasicItem<Key, Value>;

/// Per-key-type metadata the generic containers need beyond Compare:
/// the domain bounds (for full-range scans), a human-readable formatter
/// (validator diagnostics, topology heatmap labels) and a monotone-ish
/// numeric projection for heatmap coordinates.
///
/// Specializations must provide:
///   static K min();                      // smallest key value
///   static K max();                      // largest key value
///   static std::string format(const K&); // diagnostic rendering
///   static long long heat_coord(const K&); // numeric heatmap coordinate
template <class K>
struct KeyTraits;

/// All built-in signed integer keys share one definition.
template <class K>
  requires std::numeric_limits<K>::is_integer
struct KeyTraits<K> {
  static constexpr K min() { return std::numeric_limits<K>::min(); }
  static constexpr K max() { return std::numeric_limits<K>::max(); }
  static std::string format(const K& key) { return std::to_string(key); }
  static long long heat_coord(const K& key) {
    return static_cast<long long>(key);
  }
};

}  // namespace cats
