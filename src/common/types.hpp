// Fundamental key/value types shared by every data structure in this
// repository.
//
// The paper describes sets of integer keys and notes that sets "can trivially
// be modified to become key-value stores".  We build the key-value variant
// directly: every container in this repository maps a signed 64-bit key to an
// unsigned 64-bit value (large enough for a pointer or an inline payload).
#pragma once

#include <cstdint>
#include <limits>

namespace cats {

/// Key type used by all ordered maps in this repository.
using Key = std::int64_t;

/// Value payload type.  Wide enough to hold a pointer to an external object.
using Value = std::uint64_t;

/// Smallest representable key.  Range queries over [kKeyMin, kKeyMax] cover
/// the whole container.
inline constexpr Key kKeyMin = std::numeric_limits<Key>::min();

/// Largest representable key.
inline constexpr Key kKeyMax = std::numeric_limits<Key>::max();

/// A single key/value pair as stored in leaf containers.
struct Item {
  Key key;
  Value value;

  friend bool operator==(const Item&, const Item&) = default;
};

}  // namespace cats
