# Convenience wrappers around the cmake build.  `make lint` runs the exact
# cats-lint gate CI enforces (token engine, all rules R0-R7, repo baseline).

BUILD_DIR ?= build
PYTHON    ?= python3

.PHONY: lint configure build test quick

lint:
	$(PYTHON) tools/catslint/catslint.py --engine token --jobs 0

configure:
	cmake -S . -B $(BUILD_DIR) -DCMAKE_BUILD_TYPE=RelWithDebInfo

build: configure
	cmake --build $(BUILD_DIR) -j

test: build
	ctest --test-dir $(BUILD_DIR) --output-on-failure

quick: build
	ctest --test-dir $(BUILD_DIR) -L quick --output-on-failure
