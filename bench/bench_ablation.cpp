// Ablation studies on the LFCA tree's design choices (not in the paper;
// DESIGN.md motivates them):
//
//   1. Heuristic constants: how CONT_CONTRIB / RANGE_CONTRIB and the
//      HIGH/LOW thresholds move the split/join equilibrium and throughput.
//   2. The §6 optimistic range-query fast path on vs. off.
//   3. Fat-leaf fill limit (the paper fixes 64; the treap exposes a knob).
//
// All runs use the adaptivity-sensitive scenario of Fig. 9b
// (w:20% r:55% q:25%-1000).
#include "bench_common.hpp"
#include "treap/treap.hpp"

namespace {

using namespace cats;

template <class Tree = lfca::LfcaTree>
harness::RunResult run_lfca(const harness::Options& opt,
                            const lfca::Config& config,
                            const harness::Mix& mix, int threads,
                            std::size_t* routes_out) {
  Tree tree(reclaim::Domain::global(), config);
  harness::prefill(tree, opt.size);
  tree.reset_stats();
  const harness::RunResult r =
      harness::run_mix(tree, threads, mix, opt.size, opt.duration * opt.runs);
  *routes_out = tree.route_node_count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cats;
  auto opt = harness::Options::parse(argc, argv);
  const harness::Mix mix = harness::Mix::of_percent(20, 55, 25, 1000);
  const int threads = opt.threads.back();

  if (opt.csv) {
    std::printf("ablation,variant,mops,route_nodes\n");
  } else {
    std::printf("\n=== Ablation: LFCA design choices, %s, %d threads, "
                "S=%lld ===\n",
                mix.describe().c_str(), threads,
                static_cast<long long>(opt.size));
    std::printf("%-34s %10s %12s\n", "variant", "op/us", "routenodes");
  }

  auto report = [&](const char* variant, const lfca::Config& config) {
    std::size_t routes = 0;
    const harness::RunResult r = run_lfca(opt, config, mix, threads, &routes);
    if (opt.csv) {
      std::printf("ablation,%s,%.4f,%zu\n", variant, r.throughput_mops(),
                  routes);
    } else {
      std::printf("%-34s %10.3f %12zu\n", variant, r.throughput_mops(),
                  routes);
    }
    std::fflush(stdout);
  };

  lfca::Config base;
  report("paper-defaults", base);

  // 1. Heuristic constants.
  {
    lfca::Config c = base;
    c.cont_contrib = 50;
    report("cont_contrib=50 (slow splits)", c);
    c = base;
    c.cont_contrib = 1000;
    report("cont_contrib=1000 (eager splits)", c);
    c = base;
    c.range_contrib = 0;
    report("range_contrib=0 (no range info)", c);
    c = base;
    c.range_contrib = 500;
    report("range_contrib=500 (eager joins)", c);
    c = base;
    c.high_cont = 100;
    c.low_cont = -100;
    report("thresholds=+/-100 (twitchy)", c);
    c = base;
    c.high_cont = 10000;
    c.low_cont = -10000;
    report("thresholds=+/-10000 (sluggish)", c);
  }

  // 2. The §6 optimistic range query.
  {
    lfca::Config c = base;
    c.optimistic_ranges = false;
    report("optimistic-ranges=off (Fig 5 only)", c);
  }

  // 3. Fat-leaf fill limit.
  for (std::uint32_t fill : {8u, 16u, 32u, 64u}) {
    treap::set_leaf_fill(fill);
    char label[64];
    std::snprintf(label, sizeof label, "leaf_fill=%u", fill);
    report(label, base);
  }
  treap::set_leaf_fill(treap::kLeafCapacity);

  // 4. Leaf-container policy (the paper's "Flexible" property): the flat
  // sorted-array container pays O(n) per update, which is exactly the
  // degradation §3 attributes to the k-ary tree's and Leaplist's arrays
  // when nodes grow — adaptation keeps chunks short under contention, but
  // the coarse quiescent state makes updates expensive.
  {
    std::size_t routes = 0;
    const harness::RunResult r = run_lfca<lfca::LfcaTreeChunk>(
        opt, base, mix, threads, &routes);
    if (opt.csv) {
      std::printf("ablation,chunk-container,%.4f,%zu\n", r.throughput_mops(),
                  routes);
    } else {
      std::printf("%-34s %10.3f %12zu\n", "container=chunk (flat array)",
                  r.throughput_mops(), routes);
    }
  }
  return 0;
}
