// Table 2: LFCA tree internals in the Fig. 10 scenario (half updates, half
// fixed-size range queries) as a function of the range size: route-node
// count, traversed base nodes per range query, splits/ms and joins/ms.
// Larger ranges must drive the structure coarser (fewer route nodes, more
// joins), the paper's key adaptivity evidence.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);

  const int total = std::max(2, opt.threads.back());
  const int per_group = std::max(1, total / 2);

  std::vector<std::int64_t> range_sizes = {2,    128,   512,  2048,
                                           8192, 32768, 131072};
  range_sizes.erase(
      std::remove_if(range_sizes.begin(), range_sizes.end(),
                     [&](std::int64_t s) { return s >= opt.size; }),
      range_sizes.end());

  if (opt.csv) {
    std::printf(
        "table2,range_size,route_nodes,traversed_per_query,splits_per_ms,"
        "joins_per_ms\n");
  } else {
    std::printf("\n=== Table 2: LFCA statistics, %d update + %d range "
                "threads, S=%lld ===\n",
                per_group, per_group, static_cast<long long>(opt.size));
    std::printf("%10s %12s %18s %12s %12s\n", "rangesz", "routenodes",
                "traversed/query", "splits/ms", "joins/ms");
  }

  const harness::Mix update_mix = harness::Mix::of_percent(100, 0, 0);
  lfca::Config config;
  config.high_cont = opt.high_cont;
  config.low_cont = opt.low_cont;
  config.cont_contrib = opt.cont_contrib;
  for (std::int64_t range_size : range_sizes) {
    lfca::LfcaTree tree(reclaim::Domain::global(), config);
    harness::prefill(tree, opt.size);
    tree.reset_stats();
    harness::Mix range_mix =
        harness::Mix::of_percent(0, 0, 100, range_size, /*fixed=*/true);
    const harness::RunResult r = harness::run_mix(
        tree,
        {harness::ThreadGroup{per_group, update_mix},
         harness::ThreadGroup{per_group, range_mix}},
        opt.size, opt.duration * opt.runs);
    const lfca::Stats s = tree.stats();
    const double ms = r.seconds * 1000.0;
    if (opt.csv) {
      std::printf("table2,%lld,%zu,%.2f,%.3f,%.3f\n",
                  static_cast<long long>(range_size), tree.route_node_count(),
                  s.traversed_per_query(),
                  static_cast<double>(s.splits) / ms,
                  static_cast<double>(s.joins) / ms);
    } else {
      std::printf("%10lld %12zu %18.2f %12.3f %12.3f\n",
                  static_cast<long long>(range_size), tree.route_node_count(),
                  s.traversed_per_query(),
                  static_cast<double>(s.splits) / ms,
                  static_cast<double>(s.joins) / ms);
    }
    std::fflush(stdout);
  }
  return 0;
}
