// Figure 9: range queries mixed with single-item operations (§7).
//
// Scenario w:20% r:55% q:25% with increasing maximum range size:
//   (a) R = 10      — small ranges, fine granularity wins
//   (b) R = 1000    — medium ranges, adaptivity shines
//   (c) R = 100000  — large ranges, coarse granularity competitive
// All six structures, throughput vs. thread count.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);

  struct Panel {
    const char* figure;
    const char* title;
    std::int64_t range_max;
  };
  const Panel panels[] = {
      {"fig9a", "Fig 9a: w:20% r:55% q:25%-10", 10},
      {"fig9b", "Fig 9b: w:20% r:55% q:25%-1000", 1000},
      {"fig9c", "Fig 9c: w:20% r:55% q:25%-100000",
       std::min<std::int64_t>(100000, opt.size)},
  };

  if (opt.csv) std::printf("figure,structure,threads,mops,ops_min,ops_max,ops_stddev\n");
  for (const Panel& panel : panels) {
    const harness::Mix mix =
        harness::Mix::of_percent(20, 55, 25, panel.range_max);
    print_sweep_header(panel.title, opt);
    for_each_structure(opt.only, [&](auto tag) {
      using S = typename decltype(tag)::type;
      run_thread_sweep<S>(panel.figure, tag.name, opt, mix);
    });
  }
  return 0;
}
