// Lookup latency distribution under update churn (supplementary; supports
// the paper's §1/§3 argument for the WAIT-FREE lookup).
//
// The lock-based CA tree's lookups are lock-free reads, but its updates
// hold base-node locks, so a preempted lock holder stalls every conflicting
// update — and with more threads than cores (the paper's >64-thread
// region, Fig. 8c) those stalls show up in the tail of end-to-end
// latencies.  The LFCA tree's lookup is wait-free: its tail depends only on
// tree depth and the scheduler, never on another thread's progress.
//
// One measurement thread samples lookup latency while the remaining
// threads run a 50% insert / 50% remove churn.  Reported: p50/p99/p99.9/max
// in nanoseconds for every structure.
#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);
  const int churn_threads = std::max(1, opt.threads.back() - 1);
  const int samples = static_cast<int>(opt.duration * opt.runs * 400'000);

  if (opt.csv) {
    std::printf("latency,structure,p50_ns,p99_ns,p999_ns,max_ns\n");
  } else {
    std::printf("\n=== Lookup latency under churn: %d churn threads, "
                "S=%lld, %d samples ===\n",
                churn_threads, static_cast<long long>(opt.size), samples);
    std::printf("%-10s %10s %10s %10s %12s\n", "structure", "p50[ns]",
                "p99[ns]", "p99.9[ns]", "max[ns]");
  }

  for_each_structure(opt.only, [&](auto tag) {
    using S = typename decltype(tag)::type;
    S structure;
    harness::prefill(structure, opt.size);

    std::atomic<bool> stop{false};
    std::vector<std::thread> churners;
    for (int t = 0; t < churn_threads; ++t) {
      churners.emplace_back([&, t] {
        Xoshiro256 rng(t + 41);
        while (!stop.load(std::memory_order_relaxed)) {
          const Key k = rng.next_in(1, opt.size - 1);
          if (rng.next_below(2) == 0) {
            structure.insert(k, 1);
          } else {
            structure.remove(k);
          }
        }
      });
    }

    std::vector<std::uint64_t> latencies;
    latencies.reserve(samples);
    Xoshiro256 rng(7);
    for (int i = 0; i < samples; ++i) {
      const Key k = rng.next_in(1, opt.size - 1);
      const auto t0 = Clock::now();
      Value v;
      structure.lookup(k, &v);
      const auto t1 = Clock::now();
      latencies.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
    stop.store(true);
    for (auto& c : churners) c.join();

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      return latencies[static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1))];
    };
    if (opt.csv) {
      std::printf("latency,%s,%llu,%llu,%llu,%llu\n", tag.name,
                  static_cast<unsigned long long>(pct(0.50)),
                  static_cast<unsigned long long>(pct(0.99)),
                  static_cast<unsigned long long>(pct(0.999)),
                  static_cast<unsigned long long>(latencies.back()));
    } else {
      std::printf("%-10s %10llu %10llu %10llu %12llu\n", tag.name,
                  static_cast<unsigned long long>(pct(0.50)),
                  static_cast<unsigned long long>(pct(0.99)),
                  static_cast<unsigned long long>(pct(0.999)),
                  static_cast<unsigned long long>(latencies.back()));
    }
    std::fflush(stdout);
  });
  return 0;
}
