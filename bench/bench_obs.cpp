// Observability overhead check.
//
// Runs the same LFCA mix under three in-binary flight-recorder modes plus
// the compile-time hook state, so one ON/OFF build pair covers every
// overhead question:
//
//   flight-off       recorder disabled (the shipped default): every
//                    begin_span is one relaxed load and a branch
//   flight-unsampled recorder enabled at shift 20 (1 op in ~10^6): measures
//                    the enabled-but-not-sampling hot path
//   flight-sampled   recorder enabled at shift 6 (1 op in 64): the cost of
//                    actually recording spans at a tracing-grade rate
//
// Build the tree twice to compare the compile-time axis:
//
//   cmake -B build-on  -DCATS_OBS=ON  && cmake --build build-on  --target bench_obs
//   cmake -B build-off -DCATS_OBS=OFF && cmake --build build-off --target bench_obs
//   ./build-on/bench/bench_obs --csv; ./build-off/bench/bench_obs --csv
//
// The ON build's flight-off and flight-unsampled rows must stay within
// host noise of OFF: every always-on hook is a relaxed fetch_add on a
// thread-private cache line (or nothing at all on the wait-free lookup
// path), and the unsampled flight path adds one thread-local countdown.
// In OFF builds the three modes are identical by construction (the
// recorder is a stub) — the rows still print, as a baseline triple.
#include <cstdio>

#include "bench_common.hpp"
#include "obs/flight/flight.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  harness::Options opt = harness::Options::parse(argc, argv);

  const harness::Mix mix = harness::Mix::of_percent(20, 55, 25, 1000);
  if (!opt.csv) {
    std::printf("CATS_OBS=%s  mix %s  S=%lld\n",
                obs::kEnabled ? "ON" : "OFF", mix.describe().c_str(),
                static_cast<long long>(opt.size));
  }
  struct Mode {
    const char* name;
    int shift;  // -1 = recorder disabled
  };
  const Mode modes[] = {
      {"flight-off", -1},
      {"flight-unsampled", 20},
      {"flight-sampled", 6},
  };
  for (const Mode& mode : modes) {
    if (mode.shift < 0) {
      obs::flight::Recorder::instance().disable();
    } else {
      obs::flight::Recorder::instance().enable(
          static_cast<unsigned>(mode.shift));
    }
    for (int threads : opt.threads) {
      const harness::RunResult r =
          bench::measure<lfca::LfcaTree>(opt, {{threads, mix}});
      if (opt.csv) {
        std::printf("obs-overhead,%s,%s,%d,%.4f\n",
                    obs::kEnabled ? "on" : "off", mode.name, threads,
                    r.throughput_mops());
      } else {
        std::printf("%-17s threads=%-3d %9.3f ops/us  (per-thread min=%llu "
                    "max=%llu stddev=%.0f)\n",
                    mode.name, threads, r.throughput_mops(),
                    static_cast<unsigned long long>(r.ops_min()),
                    static_cast<unsigned long long>(r.ops_max()),
                    r.ops_stddev());
      }
      std::fflush(stdout);
    }
  }
  obs::flight::Recorder::instance().disable();
  // Hardware-counter smoke line: per-phase cycles/IPC when the kernel
  // permits, an explicit reason when it does not — never a failure.
  const obs::flight::PerfCounts measure_phase =
      [] {
        for (const auto& [phase, counts] : obs::flight::perf_phase_totals()) {
          if (phase == "measure") return counts;
        }
        return obs::flight::PerfCounts{};
      }();
  if (measure_phase.available) {
    std::printf("perf,measure,cycles=%llu,instructions=%llu,ipc=%.2f\n",
                static_cast<unsigned long long>(measure_phase.cycles),
                static_cast<unsigned long long>(measure_phase.instructions),
                measure_phase.ipc());
  } else {
    std::printf("perf,measure,unavailable: %s\n",
                measure_phase.unavailable_reason.empty()
                    ? "no samples"
                    : measure_phase.unavailable_reason.c_str());
  }
  return 0;
}
