// Observability overhead check.
//
// Runs the same LFCA mix in this build and prints throughput plus whether
// the hooks are compiled in.  Build the tree twice to compare:
//
//   cmake -B build-on  -DCATS_OBS=ON  && cmake --build build-on  --target bench_obs
//   cmake -B build-off -DCATS_OBS=OFF && cmake --build build-off --target bench_obs
//   ./build-on/bench/bench_obs --csv; ./build-off/bench/bench_obs --csv
//
// The ON build must stay within ~2% of OFF: every hook is a relaxed
// fetch_add on a thread-private cache line (or nothing at all on the
// wait-free lookup path).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  harness::Options opt = harness::Options::parse(argc, argv);

  const harness::Mix mix = harness::Mix::of_percent(20, 55, 25, 1000);
  if (!opt.csv) {
    std::printf("CATS_OBS=%s  mix %s  S=%lld\n",
                obs::kEnabled ? "ON" : "OFF", mix.describe().c_str(),
                static_cast<long long>(opt.size));
  }
  for (int threads : opt.threads) {
    const harness::RunResult r =
        bench::measure<lfca::LfcaTree>(opt, {{threads, mix}});
    if (opt.csv) {
      std::printf("obs-overhead,%s,%d,%.4f\n", obs::kEnabled ? "on" : "off",
                  threads, r.throughput_mops());
    } else {
      std::printf("threads=%-3d %9.3f ops/us  (per-thread min=%llu max=%llu "
                  "stddev=%.0f)\n",
                  threads, r.throughput_mops(),
                  static_cast<unsigned long long>(r.ops_min()),
                  static_cast<unsigned long long>(r.ops_max()),
                  r.ops_stddev());
    }
    std::fflush(stdout);
  }
  return 0;
}
