// Figure 8: single-item operations only (§7).
//
// Three scenarios ordered by increasing lookup share:
//   (a) w:50% r:50%     — update heavy
//   (b) w:20% r:80%     — read mostly
//   (c) w:1%  r:99%     — read dominated (wait-free lookups shine)
// All six structures, throughput vs. thread count.  --key-type=str swaps
// the roster for the StrKey LFCA instantiations (same scenarios, string
// keys through harness::StrKeyCodec).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);

  struct Panel {
    const char* figure;
    const char* title;
    unsigned w, r;
  };
  const Panel panels[] = {
      {"fig8a", "Fig 8a: w:50% r:50%", 50, 50},
      {"fig8b", "Fig 8b: w:20% r:80%", 20, 80},
      {"fig8c", "Fig 8c: w:1% r:99%", 1, 99},
  };

  if (opt.csv) std::printf("figure,structure,threads,mops,ops_min,ops_max,ops_stddev\n");
  for (const Panel& panel : panels) {
    const harness::Mix mix = harness::Mix::of_percent(panel.w, panel.r, 0);
    print_sweep_header(panel.title, opt);
    for_each_structure(opt.only, opt.key_type, [&](auto tag) {
      using S = typename decltype(tag)::type;
      run_thread_sweep<S>(panel.figure, tag.name, opt, mix);
    });
  }
  return 0;
}
