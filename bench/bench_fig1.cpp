// Figure 1: coarse- vs fine-grained synchronization (§1).
//
// The motivating experiment: the lock-free k-ary tree (fine-grained, k=64)
// against Im-Tr-Coarse (one immutable tree behind a CAS) on the mixed
// workload w:20% r:55% q:25%, once with small range queries (a) and once
// with large ones (b).  The paper's point: neither fixed granularity wins
// both scenarios — small ranges favour kary, large ranges favour imtr.
//
// Range bounds: (a) R = 10 gives ~2.5 items per query on a half-full key
// space; (b) R = S/10 gives ~S/40 items (25k at the paper's S = 10^6).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);

  struct Panel {
    const char* figure;
    const char* title;
    std::int64_t range_max;
  };
  const Panel panels[] = {
      {"fig1a", "Fig 1a: small range queries (w:20% r:55% q:25%-10)", 10},
      {"fig1b", "Fig 1b: large range queries (w:20% r:55% q:25%-S/10)",
       opt.size / 10},
  };

  if (opt.csv) std::printf("figure,structure,threads,mops,ops_min,ops_max,ops_stddev\n");
  for (const Panel& panel : panels) {
    const harness::Mix mix =
        harness::Mix::of_percent(20, 55, 25, panel.range_max);
    print_sweep_header(panel.title, opt);
    if (opt.only.empty() || opt.only == "kary") {
      run_thread_sweep<kary::KaryTree>(panel.figure, "kary", opt, mix);
    }
    if (opt.only.empty() || opt.only == "imtr") {
      run_thread_sweep<imtr::ImTreeSet>(panel.figure, "imtr", opt, mix);
    }
  }
  return 0;
}
