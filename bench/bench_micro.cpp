// Microbenchmarks (google-benchmark) for the substrates: persistent treap
// operation costs at various sizes, EBR guard/retire overhead, and the
// single-operation costs of each concurrent structure.  These are the
// numbers behind the throughput figures: e.g. the O(log n) path-copy cost
// of a persistent insert bounds the update throughput of every
// immutable-container design.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "imtr/imtr_set.hpp"
#include "lfca/lfca_tree.hpp"
#include "reclaim/ebr.hpp"
#include "skiplist/skiplist.hpp"
#include "treap/treap.hpp"

namespace {

using namespace cats;

treap::Ref build_treap(std::int64_t n, std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  treap::Ref t;
  std::int64_t inserted = 0;
  while (inserted < n) {
    bool replaced = false;
    t = treap::insert(t.get(), rng.next_in(0, n * 2), 1, &replaced);
    if (!replaced) ++inserted;
  }
  return t;
}

void BM_TreapInsert(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(13);
  for (auto _ : state) {
    treap::Ref next = treap::insert(base.get(), rng.next_in(0, n * 2), 2);
    benchmark::DoNotOptimize(next.get());
  }
  state.SetLabel("persistent path copy");
}
BENCHMARK(BM_TreapInsert)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TreapRemove(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    treap::Ref next = treap::remove(base.get(), rng.next_in(0, n * 2));
    benchmark::DoNotOptimize(next.get());
  }
}
BENCHMARK(BM_TreapRemove)->Arg(1000)->Arg(100000);

void BM_TreapLookup(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(19);
  for (auto _ : state) {
    Value v = 0;
    benchmark::DoNotOptimize(
        treap::lookup(base.get(), rng.next_in(0, n * 2), &v));
  }
}
BENCHMARK(BM_TreapLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TreapSplitJoin(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  for (auto _ : state) {
    treap::Ref l, r;
    Key pivot = 0;
    treap::split_evenly(base.get(), &l, &r, &pivot);
    treap::Ref joined = treap::join(l, r);
    benchmark::DoNotOptimize(joined.get());
  }
  state.SetLabel("split_evenly + join");
}
BENCHMARK(BM_TreapSplitJoin)->Arg(1000)->Arg(100000);

void BM_TreapRangeScan(benchmark::State& state) {
  treap::Ref base = build_treap(100000);
  const std::int64_t span = state.range(0);
  Xoshiro256 rng(23);
  for (auto _ : state) {
    const Key lo = rng.next_in(0, 200000 - span);
    std::uint64_t sum = 0;
    treap::for_range(base.get(), lo, lo + span,
                     [&](Key k, Value) { sum += k; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * span / 2);
}
BENCHMARK(BM_TreapRangeScan)->Arg(100)->Arg(10000);

void BM_EbrGuard(benchmark::State& state) {
  reclaim::Domain domain;
  for (auto _ : state) {
    reclaim::Domain::Guard guard(domain);
    benchmark::ClobberMemory();
  }
  state.SetLabel("enter+exit");
}
BENCHMARK(BM_EbrGuard);

void BM_EbrRetire(benchmark::State& state) {
  reclaim::Domain domain;
  for (auto _ : state) {
    domain.retire(new int(1));
  }
  domain.drain();
}
BENCHMARK(BM_EbrRetire);

template <class S>
void BM_StructureLookup(benchmark::State& state) {
  S s;
  Xoshiro256 rng(29);
  for (Key k = 1; k <= 100000; ++k) s.insert(k, 1);
  for (auto _ : state) {
    Value v = 0;
    benchmark::DoNotOptimize(s.lookup(rng.next_in(1, 100000), &v));
  }
}
BENCHMARK(BM_StructureLookup<lfca::LfcaTree>)->Name("BM_Lookup/lfca");
BENCHMARK(BM_StructureLookup<imtr::ImTreeSet>)->Name("BM_Lookup/imtr");
BENCHMARK(BM_StructureLookup<skiplist::SkipList>)->Name("BM_Lookup/skiplist");

template <class S>
void BM_StructureInsertRemove(benchmark::State& state) {
  S s;
  Xoshiro256 rng(31);
  for (Key k = 1; k <= 100000; ++k) s.insert(k, 1);
  for (auto _ : state) {
    const Key k = rng.next_in(1, 100000);
    s.insert(k, 2);
    s.remove(k);
  }
  state.SetLabel("insert+remove pair");
}
BENCHMARK(BM_StructureInsertRemove<lfca::LfcaTree>)->Name("BM_Update/lfca");
BENCHMARK(BM_StructureInsertRemove<imtr::ImTreeSet>)->Name("BM_Update/imtr");
BENCHMARK(BM_StructureInsertRemove<skiplist::SkipList>)
    ->Name("BM_Update/skiplist");

}  // namespace

BENCHMARK_MAIN();
