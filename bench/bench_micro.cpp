// Microbenchmarks (google-benchmark) for the substrates: persistent treap
// operation costs at various sizes, EBR guard/retire overhead, and the
// single-operation costs of each concurrent structure.  These are the
// numbers behind the throughput figures: e.g. the O(log n) path-copy cost
// of a persistent insert bounds the update throughput of every
// immutable-container design.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "imtr/imtr_set.hpp"
#include "lfca/lfca_tree.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "reclaim/ebr.hpp"
#include "skiplist/skiplist.hpp"
#include "treap/treap.hpp"

namespace {

using namespace cats;

treap::Ref build_treap(std::int64_t n, std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  treap::Ref t;
  std::int64_t inserted = 0;
  while (inserted < n) {
    bool replaced = false;
    t = treap::insert(t.get(), rng.next_in(0, n * 2), 1, &replaced);
    if (!replaced) ++inserted;
  }
  return t;
}

void BM_TreapInsert(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(13);
  for (auto _ : state) {
    treap::Ref next = treap::insert(base.get(), rng.next_in(0, n * 2), 2);
    benchmark::DoNotOptimize(next.get());
  }
  state.SetLabel("persistent path copy");
}
BENCHMARK(BM_TreapInsert)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TreapRemove(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    treap::Ref next = treap::remove(base.get(), rng.next_in(0, n * 2));
    benchmark::DoNotOptimize(next.get());
  }
}
BENCHMARK(BM_TreapRemove)->Arg(1000)->Arg(100000);

void BM_TreapLookup(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(19);
  for (auto _ : state) {
    Value v = 0;
    benchmark::DoNotOptimize(
        treap::lookup(base.get(), rng.next_in(0, n * 2), &v));
  }
}
BENCHMARK(BM_TreapLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TreapSplitJoin(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  for (auto _ : state) {
    treap::Ref l, r;
    Key pivot = 0;
    treap::split_evenly(base.get(), &l, &r, &pivot);
    treap::Ref joined = treap::join(l, r);
    benchmark::DoNotOptimize(joined.get());
  }
  state.SetLabel("split_evenly + join");
}
BENCHMARK(BM_TreapSplitJoin)->Arg(1000)->Arg(100000);

void BM_TreapRangeScan(benchmark::State& state) {
  treap::Ref base = build_treap(100000);
  const std::int64_t span = state.range(0);
  Xoshiro256 rng(23);
  for (auto _ : state) {
    const Key lo = rng.next_in(0, 200000 - span);
    std::uint64_t sum = 0;
    treap::for_range(base.get(), lo, lo + span,
                     [&](Key k, Value) { sum += k; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * span / 2);
}
BENCHMARK(BM_TreapRangeScan)->Arg(100)->Arg(10000);

void BM_EbrGuard(benchmark::State& state) {
  reclaim::Domain domain;
  for (auto _ : state) {
    reclaim::Domain::Guard guard(domain);
    benchmark::ClobberMemory();
  }
  state.SetLabel("enter+exit");
}
BENCHMARK(BM_EbrGuard);

void BM_EbrRetire(benchmark::State& state) {
  reclaim::Domain domain;
  for (auto _ : state) {
    domain.retire(new int(1));
  }
  domain.drain();
}
BENCHMARK(BM_EbrRetire);

template <class S>
void BM_StructureLookup(benchmark::State& state) {
  S s;
  Xoshiro256 rng(29);
  for (Key k = 1; k <= 100000; ++k) s.insert(k, 1);
  for (auto _ : state) {
    Value v = 0;
    benchmark::DoNotOptimize(s.lookup(rng.next_in(1, 100000), &v));
  }
}
BENCHMARK(BM_StructureLookup<lfca::LfcaTree>)->Name("BM_Lookup/lfca");
BENCHMARK(BM_StructureLookup<imtr::ImTreeSet>)->Name("BM_Lookup/imtr");
BENCHMARK(BM_StructureLookup<skiplist::SkipList>)->Name("BM_Lookup/skiplist");

template <class S>
void BM_StructureInsertRemove(benchmark::State& state) {
  S s;
  Xoshiro256 rng(31);
  for (Key k = 1; k <= 100000; ++k) s.insert(k, 1);
  for (auto _ : state) {
    const Key k = rng.next_in(1, 100000);
    s.insert(k, 2);
    s.remove(k);
  }
  state.SetLabel("insert+remove pair");
}
BENCHMARK(BM_StructureInsertRemove<lfca::LfcaTree>)->Name("BM_Update/lfca");
BENCHMARK(BM_StructureInsertRemove<imtr::ImTreeSet>)->Name("BM_Update/imtr");
BENCHMARK(BM_StructureInsertRemove<skiplist::SkipList>)
    ->Name("BM_Update/skiplist");

// ---------------------------------------------------------------------------
// Metrics demo.  After the microbenchmarks, run a short contended mix
// against an LFCA tree with sensitive adaptation thresholds and export
// everything the observability layer collected — counters, latency
// histograms, topology and the adaptation-event trace — through the
// harness's monitored-run mode (harness::MonitoredRun): the final snapshot
// lands in bench_micro_metrics.json, the sampler's rate time-series in
// bench_micro_series.csv, and with --monitor-port=P the same data is
// served live at /metrics, /stats.json, /topology.json and /healthz while
// the mix is running.
// ---------------------------------------------------------------------------
void run_metrics_demo(const harness::Options& opt, double duration) {
#if CATS_OBS_ENABLED
  // Quiescent here — the worker threads haven't started yet.
  obs::Registry::instance().reset();

  lfca::Config config;
  config.high_cont = 0;  // adapt on every contention event (1-CPU hosts
  config.low_cont = -100;  // rarely see clustered CAS failures)
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain, config);
    harness::prefill(tree, 1 << 14);
    // Declared after the tree: the monitor samples through the tree and
    // must stop before it is destroyed.
    harness::MonitoredRun monitored(opt, harness::tree_stats_source(tree),
                                    harness::tree_topology_source(tree));
    const harness::Mix mix = harness::Mix::of_percent(80, 10, 10, 256);
    harness::run_mix(tree, 4, mix, 1 << 14, duration);
    // The mix above splits under real contention; add a deterministic round
    // of forced adaptations so the exported data always shows both
    // directions, even on a single-core host where the contended phase
    // barely splits.  Hold each phase for a few sampler intervals so the
    // time-series records the plateau: the base-node column rises to ~9
    // and falls back regardless of hardware.
    const auto hold = std::chrono::milliseconds(
        opt.monitor_interval_ms > 0 ? 3 * opt.monitor_interval_ms : 0);
    for (Key k = 0; k < 8; ++k) tree.force_split(k * 2048);
    std::this_thread::sleep_for(hold);
    for (Key k = 0; k < 8; ++k) tree.force_join(k * 2048);
    std::this_thread::sleep_for(hold);

    obs::Snapshot snap = obs::global_snapshot();
    tree.stats().append_to(snap, "lfca_");
    std::printf("\n--- observability snapshot ---\n");
    obs::write_table(std::cout, snap);
    monitored.finish();  // stops endpoint + sampler, writes the files
  }
  domain.drain();
#else
  (void)opt;
  (void)duration;
  std::printf("\n(CATS_OBS=OFF: metrics export compiled out)\n");
#endif
}

}  // namespace

int main(int argc, char** argv) {
  // The metrics demo's flags are ours, not google-benchmark's; pull them
  // out before Initialize (ReportUnrecognizedArguments rejects unknowns).
  cats::harness::Options opt;
  opt.monitor_interval_ms = 50;
  opt.metrics_out = "bench_micro_metrics.json";
  opt.series_out = "bench_micro_series.csv";
  double demo_duration = 0.3;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.compare(0, std::strlen(prefix), prefix) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--monitor-interval-ms=")) {
      opt.monitor_interval_ms = std::atoi(v);
    } else if (const char* v = value("--monitor-port=")) {
      opt.monitor_port = std::atoi(v);
    } else if (const char* v = value("--metrics-out=")) {
      opt.metrics_out = v;
    } else if (const char* v = value("--series-out=")) {
      opt.series_out = v;
    } else if (const char* v = value("--trace-out=")) {
      // Same contract as the strict CLI (harness/cli.hpp): a trace request
      // against a build with no recorder is an error, not a no-op.
      if (!cats::obs::kEnabled) {
        std::fprintf(
            stderr,
            "--trace-out: flight recorder compiled out (CATS_OBS=OFF)\n");
        return 2;
      }
      opt.trace_out = v;
    } else if (const char* v = value("--trace-sample-shift=")) {
      opt.trace_sample_shift = std::atoi(v);
    } else if (const char* v = value("--demo-duration=")) {
      demo_duration = std::atof(v);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_metrics_demo(opt, demo_duration);
  return 0;
}
