// Microbenchmarks (google-benchmark) for the substrates: persistent treap
// operation costs at various sizes, EBR guard/retire overhead, and the
// single-operation costs of each concurrent structure.  These are the
// numbers behind the throughput figures: e.g. the O(log n) path-copy cost
// of a persistent insert bounds the update throughput of every
// immutable-container design.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "imtr/imtr_set.hpp"
#include "lfca/lfca_tree.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "reclaim/ebr.hpp"
#include "skiplist/skiplist.hpp"
#include "treap/treap.hpp"

namespace {

using namespace cats;

treap::Ref build_treap(std::int64_t n, std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  treap::Ref t;
  std::int64_t inserted = 0;
  while (inserted < n) {
    bool replaced = false;
    t = treap::insert(t.get(), rng.next_in(0, n * 2), 1, &replaced);
    if (!replaced) ++inserted;
  }
  return t;
}

void BM_TreapInsert(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(13);
  for (auto _ : state) {
    treap::Ref next = treap::insert(base.get(), rng.next_in(0, n * 2), 2);
    benchmark::DoNotOptimize(next.get());
  }
  state.SetLabel("persistent path copy");
}
BENCHMARK(BM_TreapInsert)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TreapRemove(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    treap::Ref next = treap::remove(base.get(), rng.next_in(0, n * 2));
    benchmark::DoNotOptimize(next.get());
  }
}
BENCHMARK(BM_TreapRemove)->Arg(1000)->Arg(100000);

void BM_TreapLookup(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  Xoshiro256 rng(19);
  for (auto _ : state) {
    Value v = 0;
    benchmark::DoNotOptimize(
        treap::lookup(base.get(), rng.next_in(0, n * 2), &v));
  }
}
BENCHMARK(BM_TreapLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TreapSplitJoin(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  treap::Ref base = build_treap(n);
  for (auto _ : state) {
    treap::Ref l, r;
    Key pivot = 0;
    treap::split_evenly(base.get(), &l, &r, &pivot);
    treap::Ref joined = treap::join(l, r);
    benchmark::DoNotOptimize(joined.get());
  }
  state.SetLabel("split_evenly + join");
}
BENCHMARK(BM_TreapSplitJoin)->Arg(1000)->Arg(100000);

void BM_TreapRangeScan(benchmark::State& state) {
  treap::Ref base = build_treap(100000);
  const std::int64_t span = state.range(0);
  Xoshiro256 rng(23);
  for (auto _ : state) {
    const Key lo = rng.next_in(0, 200000 - span);
    std::uint64_t sum = 0;
    treap::for_range(base.get(), lo, lo + span,
                     [&](Key k, Value) { sum += k; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * span / 2);
}
BENCHMARK(BM_TreapRangeScan)->Arg(100)->Arg(10000);

void BM_EbrGuard(benchmark::State& state) {
  reclaim::Domain domain;
  for (auto _ : state) {
    reclaim::Domain::Guard guard(domain);
    benchmark::ClobberMemory();
  }
  state.SetLabel("enter+exit");
}
BENCHMARK(BM_EbrGuard);

void BM_EbrRetire(benchmark::State& state) {
  reclaim::Domain domain;
  for (auto _ : state) {
    domain.retire(new int(1));
  }
  domain.drain();
}
BENCHMARK(BM_EbrRetire);

template <class S>
void BM_StructureLookup(benchmark::State& state) {
  S s;
  Xoshiro256 rng(29);
  for (Key k = 1; k <= 100000; ++k) s.insert(k, 1);
  for (auto _ : state) {
    Value v = 0;
    benchmark::DoNotOptimize(s.lookup(rng.next_in(1, 100000), &v));
  }
}
BENCHMARK(BM_StructureLookup<lfca::LfcaTree>)->Name("BM_Lookup/lfca");
BENCHMARK(BM_StructureLookup<imtr::ImTreeSet>)->Name("BM_Lookup/imtr");
BENCHMARK(BM_StructureLookup<skiplist::SkipList>)->Name("BM_Lookup/skiplist");

template <class S>
void BM_StructureInsertRemove(benchmark::State& state) {
  S s;
  Xoshiro256 rng(31);
  for (Key k = 1; k <= 100000; ++k) s.insert(k, 1);
  for (auto _ : state) {
    const Key k = rng.next_in(1, 100000);
    s.insert(k, 2);
    s.remove(k);
  }
  state.SetLabel("insert+remove pair");
}
BENCHMARK(BM_StructureInsertRemove<lfca::LfcaTree>)->Name("BM_Update/lfca");
BENCHMARK(BM_StructureInsertRemove<imtr::ImTreeSet>)->Name("BM_Update/imtr");
BENCHMARK(BM_StructureInsertRemove<skiplist::SkipList>)
    ->Name("BM_Update/skiplist");

// ---------------------------------------------------------------------------
// Metrics demo.  After the microbenchmarks, run a short contended mix
// against an LFCA tree with sensitive adaptation thresholds and export
// everything the observability layer collected — counters, latency
// histograms and the adaptation-event trace — to bench_micro_metrics.json
// (parse it back with obs/json.hpp, or eyeball the table printed below).
// ---------------------------------------------------------------------------
void run_metrics_demo() {
#if CATS_OBS_ENABLED
  obs::Registry::instance().reset();

  lfca::Config config;
  config.high_cont = 0;  // adapt on every contention event (1-CPU hosts
  config.low_cont = -100;  // rarely see clustered CAS failures)
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain, config);
    harness::prefill(tree, 1 << 14);
    const harness::Mix mix = harness::Mix::of_percent(80, 10, 10, 256);
    harness::run_mix(tree, 4, mix, 1 << 14, 0.3);
    // The mix above splits under real contention; add a deterministic round
    // of forced adaptations so the exported file always shows both
    // directions, even on a single-core host.
    for (Key k = 0; k < 8; ++k) tree.force_split(k * 2048);
    for (Key k = 0; k < 8; ++k) tree.force_join(k * 2048);

    obs::Snapshot snap = obs::global_snapshot();
    tree.stats().append_to(snap, "lfca_");

    std::printf("\n--- observability snapshot ---\n");
    obs::write_table(std::cout, snap);
    const char* path = "bench_micro_metrics.json";
    if (obs::write_json_file(path, snap)) {
      std::printf("metrics written to %s\n", path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", path);
    }
  }
  domain.drain();
#else
  std::printf("\n(CATS_OBS=OFF: metrics export compiled out)\n");
#endif
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_metrics_demo();
  return 0;
}
