// Table 1: LFCA tree internals in the Fig. 9b scenario
// (w:20% r:55% q:25%-1000) as a function of the thread count:
// route-node count, traversed base nodes per range query, splits/ms and
// joins/ms.  These are the paper's evidence that the heuristics work: more
// threads => more base nodes; larger ranges => fewer.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);

  const harness::Mix mix = harness::Mix::of_percent(20, 55, 25, 1000);

  if (opt.csv) {
    std::printf(
        "table1,threads,route_nodes,traversed_per_query,splits_per_ms,"
        "joins_per_ms,mops\n");
  } else {
    std::printf("\n=== Table 1: LFCA statistics, %s, S=%lld ===\n",
                mix.describe().c_str(), static_cast<long long>(opt.size));
    std::printf("%8s %12s %18s %12s %12s %10s\n", "threads", "routenodes",
                "traversed/query", "splits/ms", "joins/ms", "op/us");
  }

  lfca::Config config;
  config.high_cont = opt.high_cont;
  config.low_cont = opt.low_cont;
  config.cont_contrib = opt.cont_contrib;
  for (int threads : opt.threads) {
    lfca::LfcaTree tree(reclaim::Domain::global(), config);
    harness::prefill(tree, opt.size);
    tree.reset_stats();
    const harness::RunResult r = harness::run_mix(
        tree, threads, mix, opt.size, opt.duration * opt.runs);
    const lfca::Stats s = tree.stats();
    const double ms = r.seconds * 1000.0;
    const double splits_ms = static_cast<double>(s.splits) / ms;
    const double joins_ms = static_cast<double>(s.joins) / ms;
    if (opt.csv) {
      std::printf("table1,%d,%zu,%.2f,%.3f,%.3f,%.4f\n", threads,
                  tree.route_node_count(), s.traversed_per_query(), splits_ms,
                  joins_ms, r.throughput_mops());
    } else {
      std::printf("%8d %12zu %18.2f %12.3f %12.3f %10.3f\n", threads,
                  tree.route_node_count(), s.traversed_per_query(), splits_ms,
                  joins_ms, r.throughput_mops());
    }
    std::fflush(stdout);
  }
  return 0;
}
