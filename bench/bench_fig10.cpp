// Figure 10: large range queries under concurrent updates (§7, after the
// KiWi authors' benchmark).
//
// Half the threads run updates (50% insert / 50% remove), the other half
// run range queries of one FIXED size; the two throughputs are reported
// separately.  Following the paper, the range-query plot shows
// operations/us multiplied by the range size ("items scanned per us").
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  using namespace cats::bench;
  auto opt = harness::Options::parse(argc, argv);

  // The paper uses 16 + 16 threads; we split the largest requested count.
  const int total = std::max(2, opt.threads.back());
  const int per_group = std::max(1, total / 2);

  std::vector<std::int64_t> range_sizes = {2,    128,   512,  2048,
                                           8192, 32768, 131072};
  range_sizes.erase(
      std::remove_if(range_sizes.begin(), range_sizes.end(),
                     [&](std::int64_t s) { return s >= opt.size; }),
      range_sizes.end());

  if (opt.csv) {
    std::printf(
        "figure,structure,range_size,update_mops,range_mops,"
        "range_items_per_us\n");
  } else {
    std::printf("\n=== Fig 10: %d update threads + %d range-query threads "
                "===\n",
                per_group, per_group);
    std::printf("S=%lld, %.2fs x %d run(s)\n",
                static_cast<long long>(opt.size), opt.duration, opt.runs);
    std::printf("%-10s %10s | %-14s | %-14s | %s\n", "structure", "rangesz",
                "updates op/us", "ranges op/us", "items/us (Fig 10a y-axis)");
  }

  const harness::Mix update_mix = harness::Mix::of_percent(100, 0, 0);
  for_each_structure(opt.only, [&](auto tag) {
    using S = typename decltype(tag)::type;
    for (std::int64_t range_size : range_sizes) {
      harness::Mix range_mix =
          harness::Mix::of_percent(0, 0, 100, range_size, /*fixed=*/true);
      const harness::RunResult r = measure<S>(
          opt, {harness::ThreadGroup{per_group, update_mix},
                harness::ThreadGroup{per_group, range_mix}});
      const double update_mops = r.group_mops(0);
      const double range_mops = r.group_mops(1);
      const double items_per_us =
          range_mops * static_cast<double>(range_size);
      if (opt.csv) {
        std::printf("fig10,%s,%lld,%.4f,%.6f,%.4f\n", tag.name,
                    static_cast<long long>(range_size), update_mops,
                    range_mops, items_per_us);
      } else {
        std::printf("%-10s %10lld | %14.4f | %14.6f | %10.3f\n", tag.name,
                    static_cast<long long>(range_size), update_mops,
                    range_mops, items_per_us);
      }
      std::fflush(stdout);
    }
  });
  return 0;
}
