// Figure 11: time series of a workload whose range-query size changes
// abruptly (§7).
//
// Threads continuously run w:20% r:55% q:25%-R where R cycles through
// 1000 -> 10 -> 1000 -> 10 -> 100000 (one phase each).  The driver samples
// the route-node count and the throughput at fixed intervals; after each
// phase change the route-node count must drift toward the new workload's
// equilibrium (down for large ranges, up for small ones) while throughput
// recovers — the paper's demonstration of smooth, local adaptation.
//
// Simplification vs. the paper's protocol: the paper isolates each sample
// point in a fresh JVM with warm-up and trigger runs to control JIT noise;
// native code needs none of that, so this driver samples one continuous
// run.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cats;
  auto opt = harness::Options::parse(argc, argv);

  const int threads = opt.threads.back();
  const double phase_seconds = std::max(0.6, opt.duration);
  const int samples_per_phase = 6;
  const std::int64_t phases[] = {1000, 10, 1000, 10,
                                 std::min<std::int64_t>(100000, opt.size)};

  lfca::Config config;
  config.high_cont = opt.high_cont;
  config.low_cont = opt.low_cont;
  config.cont_contrib = opt.cont_contrib;
  lfca::LfcaTree tree(reclaim::Domain::global(), config);
  harness::prefill(tree, opt.size);
  // Live monitoring of the adaptation run (--monitor-interval-ms,
  // --monitor-port, --metrics-out, --series-out); declared after the tree
  // so its sampler stops before the tree dies.
  harness::MonitoredRun monitored(opt, harness::tree_stats_source(tree),
                                  harness::tree_topology_source(tree));

  std::atomic<std::int64_t> range_max{phases[0]};
  std::atomic<bool> stop{false};
  std::vector<Padded<std::atomic<std::uint64_t>>> ops(threads);
  SpinBarrier barrier(threads + 1);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t + 17);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t dice = rng.next_below(1000);
        const Key k = rng.next_in(1, opt.size - 1);
        // Flight-recorder span, mirroring harness::run_mix (no-op unless
        // --trace-out/--monitor-port enabled the recorder).
        obs::flight::SpanStart span = obs::flight::begin_span();
        obs::flight::SpanKind span_kind = obs::flight::SpanKind::kLookup;
        if (dice < 200) {
          if ((dice & 1) == 0) {
            span_kind = obs::flight::SpanKind::kInsert;
            tree.insert(k, 1);
          } else {
            span_kind = obs::flight::SpanKind::kRemove;
            tree.remove(k);
          }
        } else if (dice < 750) {
          tree.lookup(k);
        } else {
          span_kind = obs::flight::SpanKind::kRange;
          const std::int64_t r = range_max.load(std::memory_order_relaxed);
          const std::int64_t span =
              static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint64_t>(r))) +
              1;
          std::uint64_t sum = 0;
          tree.range_query(k, k + span - 1,
                           [&](Key key, Value) { sum += key; });
          if (sum == 0xdeadbeefdeadbeefull) std::abort();
        }
        obs::flight::end_span(span, span_kind, k);
        ops[t]->fetch_add(1, std::memory_order_relaxed);
        CATS_OBS_ONLY(obs::count(obs::GCounter::kHarnessOps));
      }
    });
  }

  if (opt.csv) {
    std::printf("fig11,time_s,range_max,route_nodes,mops\n");
  } else {
    std::printf("\n=== Fig 11: time series, %d threads, w:20%% r:55%% "
                "q:25%%-R, S=%lld ===\n",
                threads, static_cast<long long>(opt.size));
    std::printf("%8s %10s %12s %10s\n", "time[s]", "R", "routenodes",
                "op/us");
  }

  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t last_ops = 0;
  double last_time = 0;
  for (std::size_t phase = 0; phase < std::size(phases); ++phase) {
    range_max.store(phases[phase], std::memory_order_relaxed);
    for (int s = 0; s < samples_per_phase; ++s) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          phase_seconds / samples_per_phase));
      std::uint64_t now_ops = 0;
      for (auto& o : ops) now_ops += o->load(std::memory_order_relaxed);
      const double now_time = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
      const double mops = static_cast<double>(now_ops - last_ops) /
                          (now_time - last_time) / 1e6;
      const std::size_t routes = tree.route_node_count();
      if (opt.csv) {
        std::printf("fig11,%.2f,%lld,%zu,%.4f\n", now_time,
                    static_cast<long long>(phases[phase]), routes, mops);
      } else {
        std::printf("%8.2f %10lld %12zu %10.3f\n", now_time,
                    static_cast<long long>(phases[phase]), routes, mops);
      }
      std::fflush(stdout);
      last_ops = now_ops;
      last_time = now_time;
    }
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  monitored.finish();
  return 0;
}
