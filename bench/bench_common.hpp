// Shared scaffolding for the figure/table benchmark binaries: the roster of
// competing structures and the measure-and-print loop.
//
// Structure names follow the paper's legends:
//   lfca       — this paper's LFCA tree
//   ca-lock    — lock-based CA tree [17, 22]
//   kary       — lock-free k-ary search tree, k = 64 [4]
//   imtr       — Im-Tr-Coarse: CAS on a single immutable tree (§1)
//   sl-nonatom — lock-free skiplist, non-linearizable ranges (NonAtomicSL)
//   vskip      — versioned skiplist (KiWi-mechanism stand-in [2])
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "calock/ca_tree.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "imtr/imtr_set.hpp"
#include "kary/kary_tree.hpp"
#include "lfca/lfca_tree.hpp"
#include "skiplist/skiplist.hpp"
#include "vskip/versioned_skiplist.hpp"

namespace cats::bench {

template <class S>
struct Tag {
  using type = S;
  const char* name;
};

/// Key codec driving a structure (see harness/workload.hpp): the identity
/// codec for the integer-keyed roster, the decimal StrKey codec for the
/// string-keyed LFCA instantiations.
template <class S>
struct KeyCodecOf {
  using type = harness::IntKeyCodec;
};
template <>
struct KeyCodecOf<lfca::LfcaStrTree> {
  using type = harness::StrKeyCodec;
};
template <>
struct KeyCodecOf<lfca::LfcaStrTreeChunk> {
  using type = harness::StrKeyCodec;
};

/// Invokes `f` with a Tag for every structure passing the --only filter
/// (the paper's six integer-keyed structures).
template <class F>
void for_each_structure(const std::string& only, F&& f) {
  auto want = [&](const char* name) { return only.empty() || only == name; };
  if (want("lfca")) f(Tag<lfca::LfcaTree>{"lfca"});
  if (want("ca-lock")) f(Tag<calock::CaTree>{"ca-lock"});
  if (want("kary")) f(Tag<kary::KaryTree>{"kary"});
  if (want("imtr")) f(Tag<imtr::ImTreeSet>{"imtr"});
  if (want("sl-nonatom")) f(Tag<skiplist::SkipList>{"sl-nonatom"});
  if (want("vskip")) f(Tag<vskip::VersionedSkipList>{"vskip"});
}

/// Roster selection by --key-type: "int" is the paper's six structures,
/// "str" the StrKey LFCA instantiations (treap and chunk leaves).  `f` is
/// instantiated for both rosters, so its body must be key-type generic
/// (drive the structure through measure()/run_thread_sweep(), which pick
/// the codec via KeyCodecOf).
template <class F>
void for_each_structure(const std::string& only, const std::string& key_type,
                        F&& f) {
  if (key_type == "str") {
    auto want = [&](const char* name) { return only.empty() || only == name; };
    if (want("lfca")) f(Tag<lfca::LfcaStrTree>{"lfca"});
    if (want("lfca-chunk")) f(Tag<lfca::LfcaStrTreeChunk>{"lfca-chunk"});
    return;
  }
  for_each_structure(only, static_cast<F&&>(f));
}

/// Builds a fresh pre-filled instance, runs the groups `opt.runs` times and
/// returns the averaged result.
template <class S>
harness::RunResult measure(const harness::Options& opt,
                           const std::vector<harness::ThreadGroup>& groups) {
  using Codec = typename KeyCodecOf<S>::type;
  harness::RunResult avg;
  for (int run = 0; run < opt.runs; ++run) {
    S structure;
    harness::prefill<S, Codec>(structure, opt.size);
    const harness::RunResult r = harness::run_mix<S, Codec>(
        structure, groups, opt.size, opt.duration, 1000 + run);
    avg.seconds += r.seconds / opt.runs;
    avg.total_ops += r.total_ops / opt.runs;
    avg.range_queries += r.range_queries / opt.runs;
    avg.range_items += r.range_items / opt.runs;
    for (int g = 0; g < 4; ++g) avg.group_ops[g] += r.group_ops[g] / opt.runs;
    // Per-thread counts are concatenated, not averaged: the fairness
    // statistics then cover every (thread, run) sample.
    avg.per_thread_ops.insert(avg.per_thread_ops.end(),
                              r.per_thread_ops.begin(),
                              r.per_thread_ops.end());
  }
  return avg;
}

/// Prints one throughput-vs-threads series in the paper's layout (ops/µs)
/// or CSV (`figure,structure,threads,mops,ops_min,ops_max,ops_stddev`).
template <class S>
void run_thread_sweep(const char* figure, const char* name,
                      const harness::Options& opt, const harness::Mix& mix) {
  if (!opt.csv) std::printf("%-10s", name);
  std::vector<double> imbalance;  // ops_stddev / mean, one per thread count
  for (int threads : opt.threads) {
    harness::RunResult r =
        measure<S>(opt, {harness::ThreadGroup{threads, mix}});
    double mean_ops = 0;
    for (std::uint64_t ops : r.per_thread_ops) {
      mean_ops += static_cast<double>(ops);
    }
    if (!r.per_thread_ops.empty()) {
      mean_ops /= static_cast<double>(r.per_thread_ops.size());
    }
    if (opt.csv) {
      std::printf("%s,%s,%d,%.4f,%llu,%llu,%.1f\n", figure, name, threads,
                  r.throughput_mops(),
                  static_cast<unsigned long long>(r.ops_min()),
                  static_cast<unsigned long long>(r.ops_max()),
                  r.ops_stddev());
    } else {
      std::printf(" %9.3f", r.throughput_mops());
      imbalance.push_back(mean_ops > 0 ? r.ops_stddev() / mean_ops : 0);
    }
    std::fflush(stdout);
  }
  if (!opt.csv) {
    std::printf("\n%-10s", "  ±thr");
    for (double im : imbalance) std::printf(" %8.1f%%", im * 100);
    std::printf("\n");
  }
}

inline void print_sweep_header(const char* title,
                               const harness::Options& opt) {
  if (opt.csv) return;
  std::printf("\n=== %s ===\n", title);
  std::printf("throughput in operations/us; S=%lld, %.2fs x %d run(s)\n",
              static_cast<long long>(opt.size), opt.duration, opt.runs);
  std::printf(
      "+-thr rows: per-thread op-count stddev as %% of the mean "
      "(scheduling fairness)\n");
  std::printf("%-10s", "threads:");
  for (int t : opt.threads) std::printf(" %9d", t);
  std::printf("\n");
}

}  // namespace cats::bench
