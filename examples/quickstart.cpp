// Quickstart: the LFCA tree's public API in five minutes.
//
// Build & run:   ./build/examples/quickstart
//
// An LfcaTree is a concurrent ordered map from int64 keys to uint64 values
// with wait-free lookup, lock-free insert/remove, and lock-free
// linearizable range queries.  It needs no tuning: the tree adapts its
// internal synchronization granularity to however you use it.
#include <cstdio>
#include <thread>
#include <vector>

#include "lfca/lfca_tree.hpp"

int main() {
  using namespace cats;

  lfca::LfcaTree tree;

  // --- Single-item operations -------------------------------------------
  tree.insert(3, 30);              // -> true  (new key)
  tree.insert(1, 10);
  tree.insert(4, 40);
  const bool fresh = tree.insert(1, 15);  // -> false (overwrite)
  std::printf("insert(1, 15) was a fresh insert? %s\n",
              fresh ? "yes" : "no");

  Value v = 0;
  if (tree.lookup(1, &v)) std::printf("lookup(1) = %llu\n",
                                      static_cast<unsigned long long>(v));

  tree.remove(4);
  std::printf("lookup(4) after remove: %s\n",
              tree.lookup(4) ? "found" : "not found");

  // --- Range queries -------------------------------------------------------
  // Visits items in ascending key order, as one atomic snapshot: the
  // visitor never sees a mix of two states of the map.
  tree.insert(5, 50);
  tree.insert(9, 90);
  std::printf("items in [1, 5]:");
  tree.range_query(1, 5, [](Key k, Value value) {
    std::printf(" (%lld -> %llu)", static_cast<long long>(k),
                static_cast<unsigned long long>(value));
  });
  std::printf("\n");

  // --- Concurrency ----------------------------------------------------------
  // All operations may run from any number of threads with no external
  // locking.  Here: 4 writers fill disjoint key stripes while a reader
  // repeatedly sums a range snapshot.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tree, t] {
      for (Key k = 0; k < 10000; ++k) {
        tree.insert(1000 + k * 4 + t, static_cast<Value>(k));
      }
    });
  }
  std::thread reader([&tree] {
    for (int i = 0; i < 100; ++i) {
      unsigned long long sum = 0;
      std::size_t n = 0;
      tree.range_query(1000, 41000, [&](Key, Value value) {
        sum += value;
        ++n;
      });
      (void)sum;
      (void)n;
    }
  });
  for (auto& w : writers) w.join();
  reader.join();

  std::printf("final size: %zu\n", tree.size());
  std::printf("route nodes (granularity adapted at runtime): %zu\n",
              tree.route_node_count());

  // Operation statistics are always available:
  const lfca::Stats stats = tree.stats();
  std::printf("splits=%llu joins=%llu range-queries=%llu (optimistic=%llu)\n",
              static_cast<unsigned long long>(stats.splits),
              static_cast<unsigned long long>(stats.joins),
              static_cast<unsigned long long>(stats.range_queries),
              static_cast<unsigned long long>(stats.optimistic_ranges));
  return 0;
}
