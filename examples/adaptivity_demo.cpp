// Example: watching the tree adapt (a miniature of the paper's Fig. 11).
//
// Runs three workload phases against one LFCA tree and prints the
// route-node count after each phase:
//
//   phase 1  contended point updates   -> splits: granularity gets finer
//   phase 2  large range queries       -> joins: granularity gets coarser
//   phase 3  contended updates again   -> splits again
//
// The demo uses sensitive thresholds so the adaptation is visible within
// seconds on any machine, including single-core CI boxes where genuine CAS
// contention is rare (see EXPERIMENTS.md).
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "lfca/lfca_tree.hpp"

namespace {

using namespace cats;

constexpr Key kKeys = 100'000;

void contended_updates(lfca::LfcaTree& tree, int threads, int ops) {
  SpinBarrier barrier(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < ops; ++i) {
        const Key k = rng.next_in(1, kKeys - 1);
        if (rng.next_below(2) == 0) {
          tree.insert(k, 1);
        } else {
          tree.remove(k);
        }
        // A sprinkle of small non-optimistic-unfriendly range queries keeps
        // conflict windows open so contention is detectable even on one
        // core.
        if (i % 64 == 0) {
          unsigned long long sum = 0;
          tree.range_query(k, k + 50, [&](Key key, Value) { sum += key; });
          (void)sum;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

// Mostly large range queries with a few updates mixed in: the paper's
// heuristics persist a range query's "I needed several base nodes"
// observation into the statistics when an update later replaces one of its
// range_base markers (new_stat, Fig. 4), so a pinch of updates is what lets
// the range information reach the join decision.
void large_range_queries(lfca::LfcaTree& tree) {
  Xoshiro256 rng(99);
  const std::size_t initial_routes = tree.route_node_count();
  // Run until the tree has coarsened to (almost) a single base node; each
  // query scans half the key space, so a few hundred suffice.
  for (int i = 0; i < 2000 && tree.route_node_count() > initial_routes / 10;
       ++i) {
    unsigned long long sum = 0;
    const Key lo = rng.next_in(1, kKeys / 2);
    tree.range_query(lo, lo + kKeys / 2, [&](Key k, Value) { sum += k; });
    (void)sum;
    for (int u = 0; u < 8; ++u) tree.insert(rng.next_in(1, kKeys - 1), 2);
  }
}

void report(const lfca::LfcaTree& tree, const char* phase) {
  const lfca::Stats s = tree.stats();
  std::printf("%-38s route nodes: %4zu   (splits: %llu, joins: %llu)\n",
              phase, tree.route_node_count(),
              static_cast<unsigned long long>(s.splits),
              static_cast<unsigned long long>(s.joins));
}

}  // namespace

int main() {
  lfca::Config config;
  config.high_cont = 0;        // demo: one detected conflict splits
  config.low_cont = -200;      // two multi-base range hits join
  config.low_cont_contrib = 0; // only range info drives joins (visibility:
                               // on a 1-core host the -1/op drift would
                               // collapse structure between phases)
  config.optimistic_ranges = false;  // range queries leave visible traces
  lfca::LfcaTree tree(reclaim::Domain::global(), config);

  for (Key k = 1; k < kKeys; k += 2) tree.insert(k, 1);
  report(tree, "after pre-fill (one base node):");

  std::printf("\nphase 1: contended updates from 8 threads...\n");
  contended_updates(tree, 8, 60'000);
  report(tree, "after contended updates:");

  std::printf("\nphase 2: large range queries (half the key space)...\n");
  large_range_queries(tree);
  report(tree, "after large range queries:");

  std::printf("\nphase 3: contended updates again...\n");
  contended_updates(tree, 8, 60'000);
  report(tree, "after second update burst:");

  std::printf(
      "\nThe same tree served all three phases with no reconfiguration —\n"
      "synchronization granularity followed the workload (paper §7, "
      "Fig. 11).\n");
  return 0;
}
