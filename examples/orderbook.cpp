// Example: in-memory limit order book.
//
// Price levels are keys (price in ticks), the aggregated resting quantity
// at each level is the value.  Market data handlers mutate levels
// concurrently; trading strategies need *consistent* views of the top of
// the book — top-N levels must come from one instant, or a strategy could
// see a crossed book that never existed.  The LFCA tree's linearizable
// range queries provide exactly that; its adaptivity handles the classic
// order-book skew where a few levels near the touch are update-hot while
// depth queries scan wide, cold ranges.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"

namespace {

using namespace cats;

// Bids and asks share one tree: asks at price p map to key p, bids to
// key -p, so "best" is always the range end closest to zero.
constexpr Key kMid = 10'000;  // initial mid price, in ticks

struct TopOfBook {
  Key best_bid = 0;
  Key best_ask = 0;
  Value bid_qty = 0;
  Value ask_qty = 0;
};

}  // namespace

int main() {
  lfca::LfcaTree book;
  Xoshiro256 setup_rng(7);

  // Seed 500 levels on each side.
  for (int i = 1; i <= 500; ++i) {
    book.insert(kMid + i, 100 + setup_rng.next_below(900));   // asks
    book.insert(-(kMid - i), 100 + setup_rng.next_below(900));  // bids
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates{0};
  std::atomic<std::uint64_t> crossed_books{0};

  // --- Market data: 3 feed handlers hammering levels near the touch. -------
  std::vector<std::thread> feeds;
  for (int f = 0; f < 3; ++f) {
    feeds.emplace_back([&, f] {
      Xoshiro256 rng(f + 11);
      while (!stop.load(std::memory_order_relaxed)) {
        // 80% of updates hit the 16 levels nearest the mid (hot zone).
        const bool hot = rng.next_below(10) < 8;
        const Key depth = hot ? rng.next_in(1, 16) : rng.next_in(17, 500);
        const bool ask_side = rng.next_below(2) == 0;
        const Key level = ask_side ? kMid + depth : -(kMid - depth);
        if (rng.next_below(10) == 0) {
          book.remove(level);  // level wiped
        } else {
          book.insert(level, 100 + rng.next_below(900));  // quantity update
        }
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // --- Strategy: consistent top-of-book + 10-level depth snapshots. --------
  std::thread strategy([&] {
    for (int i = 0; i < 20'000; ++i) {
      TopOfBook top;
      // Best ask = smallest key > 0; best bid = largest key < 0.  One range
      // query per side gives a consistent ladder.
      int seen = 0;
      book.range_query(kMid - 600, kMid + 600, [&](Key k, Value q) {
        if (seen++ == 0) {
          top.best_ask = k;
          top.ask_qty = q;
        }
      });
      seen = 0;
      Key last_key = 0;
      Value last_qty = 0;
      book.range_query(-(kMid + 600), -(kMid - 600), [&](Key k, Value q) {
        last_key = k;
        last_qty = q;
        ++seen;
      });
      if (seen > 0) {
        top.best_bid = -last_key;
        top.bid_qty = last_qty;
      }
      if (top.best_ask != 0 && top.best_bid != 0 &&
          top.best_bid >= top.best_ask) {
        // Would indicate a torn (non-atomic) snapshot: bids and asks are
        // maintained so they never cross.
        crossed_books.fetch_add(1);
      }
      if (i % 5000 == 0) {
        std::printf("[strategy] best bid %lld x %llu | best ask %lld x %llu\n",
                    static_cast<long long>(top.best_bid),
                    static_cast<unsigned long long>(top.bid_qty),
                    static_cast<long long>(top.best_ask),
                    static_cast<unsigned long long>(top.ask_qty));
      }
    }
  });

  // --- Risk: periodic full-depth valuation over the whole book. -----------
  std::thread risk([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      unsigned long long notional = 0;
      std::size_t levels = 0;
      book.range_query(kKeyMin + 1, kKeyMax - 1, [&](Key k, Value q) {
        notional += static_cast<unsigned long long>(k < 0 ? -k : k) * q;
        ++levels;
      });
      (void)notional;
      (void)levels;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  strategy.join();
  stop.store(true);
  for (auto& f : feeds) f.join();
  risk.join();

  std::printf("\n%llu market-data updates processed\n",
              static_cast<unsigned long long>(updates.load()));
  std::printf("crossed-book observations (must be 0): %llu\n",
              static_cast<unsigned long long>(crossed_books.load()));
  std::printf("book levels now: %zu, route nodes: %zu\n", book.size(),
              book.route_node_count());
  return crossed_books.load() == 0 ? 0 : 1;
}
