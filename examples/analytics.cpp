// Example: real-time analytics event store.
//
// The paper motivates range-query key-value stores with big-scale data
// processing and in-memory analytics (Google F1, Yahoo Flurry).  This
// example models that workload: ingest threads append timestamped events
// while dashboard threads concurrently compute sliding-window aggregates
// with linearizable range queries — each window is a consistent snapshot
// even though thousands of inserts land during the scan.
//
// Key encoding: (timestamp_ms << 20) | sequence, so events sort by time and
// a time window is a key range.  Value: the event's measurement.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"

namespace {

using namespace cats;

Key encode(std::int64_t timestamp_ms, std::uint32_t sequence) {
  return (timestamp_ms << 20) | sequence;
}

std::int64_t now_ms(std::chrono::steady_clock::time_point epoch) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace

int main() {
  lfca::LfcaTree events;
  const auto epoch = std::chrono::steady_clock::now();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};

  // --- Ingest: 4 producers appending events at full speed. -----------------
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      Xoshiro256 rng(p + 1);
      std::uint32_t seq = static_cast<std::uint32_t>(p) << 16;
      while (!stop.load(std::memory_order_relaxed)) {
        const Value measurement = rng.next_below(1000);  // e.g. latency ms
        events.insert(encode(now_ms(epoch), seq++ & 0xfffff), measurement);
        ingested.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // --- Dashboards: sliding-window aggregates over the last 50 ms. ---------
  std::vector<std::thread> dashboards;
  std::atomic<int> reports{0};
  for (int d = 0; d < 2; ++d) {
    dashboards.emplace_back([&, d] {
      while (reports.load() < 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const std::int64_t t = now_ms(epoch);
        const Key window_lo = encode(t - 50, 0);
        const Key window_hi = encode(t, 0xfffff);
        std::uint64_t sum = 0;
        std::uint64_t count = 0;
        std::uint64_t max_val = 0;
        events.range_query(window_lo, window_hi, [&](Key, Value v) {
          sum += v;
          ++count;
          if (v > max_val) max_val = v;
        });
        if (count > 0 && d == 0) {
          std::printf(
              "[dashboard] t=%5lldms window=50ms events=%7llu avg=%5.1f "
              "max=%4llu\n",
              static_cast<long long>(t),
              static_cast<unsigned long long>(count),
              static_cast<double>(sum) / static_cast<double>(count),
              static_cast<unsigned long long>(max_val));
          reports.fetch_add(1);
        }
      }
    });
  }

  // --- Retention: expire events older than 200 ms. -------------------------
  std::thread retention([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const std::int64_t cutoff = now_ms(epoch) - 200;
      std::vector<Key> expired;
      events.range_query(0, encode(cutoff, 0xfffff),
                         [&](Key k, Value) { expired.push_back(k); });
      for (Key k : expired) events.remove(k);
    }
  });

  for (auto& d : dashboards) d.join();
  stop.store(true);
  for (auto& p : producers) p.join();
  retention.join();

  std::printf("\ningested %llu events total; store holds %zu after "
              "retention\n",
              static_cast<unsigned long long>(ingested.load()),
              events.size());
  std::printf("tree adapted to %zu route nodes (splits=%llu joins=%llu)\n",
              events.route_node_count(),
              static_cast<unsigned long long>(events.stats().splits),
              static_cast<unsigned long long>(events.stats().joins));
  return 0;
}
