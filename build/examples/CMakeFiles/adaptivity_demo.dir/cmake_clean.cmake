file(REMOVE_RECURSE
  "CMakeFiles/adaptivity_demo.dir/adaptivity_demo.cpp.o"
  "CMakeFiles/adaptivity_demo.dir/adaptivity_demo.cpp.o.d"
  "adaptivity_demo"
  "adaptivity_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptivity_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
