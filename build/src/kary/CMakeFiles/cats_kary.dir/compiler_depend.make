# Empty compiler generated dependencies file for cats_kary.
# This may be replaced when dependencies are built.
