file(REMOVE_RECURSE
  "CMakeFiles/cats_kary.dir/kary_tree.cpp.o"
  "CMakeFiles/cats_kary.dir/kary_tree.cpp.o.d"
  "libcats_kary.a"
  "libcats_kary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_kary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
