file(REMOVE_RECURSE
  "libcats_kary.a"
)
