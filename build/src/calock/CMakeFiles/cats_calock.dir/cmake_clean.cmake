file(REMOVE_RECURSE
  "CMakeFiles/cats_calock.dir/ca_tree.cpp.o"
  "CMakeFiles/cats_calock.dir/ca_tree.cpp.o.d"
  "libcats_calock.a"
  "libcats_calock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_calock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
