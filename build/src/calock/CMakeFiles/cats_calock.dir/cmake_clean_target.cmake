file(REMOVE_RECURSE
  "libcats_calock.a"
)
