# Empty compiler generated dependencies file for cats_calock.
# This may be replaced when dependencies are built.
