file(REMOVE_RECURSE
  "libcats_skiplist.a"
)
