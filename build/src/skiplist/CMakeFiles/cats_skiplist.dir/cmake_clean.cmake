file(REMOVE_RECURSE
  "CMakeFiles/cats_skiplist.dir/skiplist.cpp.o"
  "CMakeFiles/cats_skiplist.dir/skiplist.cpp.o.d"
  "libcats_skiplist.a"
  "libcats_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
