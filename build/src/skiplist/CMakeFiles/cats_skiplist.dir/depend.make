# Empty dependencies file for cats_skiplist.
# This may be replaced when dependencies are built.
