file(REMOVE_RECURSE
  "libcats_treap.a"
)
