file(REMOVE_RECURSE
  "CMakeFiles/cats_treap.dir/treap.cpp.o"
  "CMakeFiles/cats_treap.dir/treap.cpp.o.d"
  "libcats_treap.a"
  "libcats_treap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_treap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
