# Empty dependencies file for cats_treap.
# This may be replaced when dependencies are built.
