# Empty dependencies file for cats_chunk.
# This may be replaced when dependencies are built.
