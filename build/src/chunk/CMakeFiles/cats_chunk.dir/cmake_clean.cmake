file(REMOVE_RECURSE
  "CMakeFiles/cats_chunk.dir/chunk.cpp.o"
  "CMakeFiles/cats_chunk.dir/chunk.cpp.o.d"
  "libcats_chunk.a"
  "libcats_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
