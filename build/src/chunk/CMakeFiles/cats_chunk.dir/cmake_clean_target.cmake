file(REMOVE_RECURSE
  "libcats_chunk.a"
)
