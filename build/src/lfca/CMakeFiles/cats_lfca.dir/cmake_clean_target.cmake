file(REMOVE_RECURSE
  "libcats_lfca.a"
)
