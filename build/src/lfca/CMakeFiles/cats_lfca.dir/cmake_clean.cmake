file(REMOVE_RECURSE
  "CMakeFiles/cats_lfca.dir/lfca_tree.cpp.o"
  "CMakeFiles/cats_lfca.dir/lfca_tree.cpp.o.d"
  "libcats_lfca.a"
  "libcats_lfca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_lfca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
