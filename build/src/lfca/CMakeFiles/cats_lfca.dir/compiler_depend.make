# Empty compiler generated dependencies file for cats_lfca.
# This may be replaced when dependencies are built.
