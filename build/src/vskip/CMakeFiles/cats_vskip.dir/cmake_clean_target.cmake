file(REMOVE_RECURSE
  "libcats_vskip.a"
)
