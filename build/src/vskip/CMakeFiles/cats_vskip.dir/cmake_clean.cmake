file(REMOVE_RECURSE
  "CMakeFiles/cats_vskip.dir/versioned_skiplist.cpp.o"
  "CMakeFiles/cats_vskip.dir/versioned_skiplist.cpp.o.d"
  "libcats_vskip.a"
  "libcats_vskip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_vskip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
