# Empty dependencies file for cats_vskip.
# This may be replaced when dependencies are built.
