file(REMOVE_RECURSE
  "libcats_reclaim.a"
)
