# Empty dependencies file for cats_reclaim.
# This may be replaced when dependencies are built.
