file(REMOVE_RECURSE
  "CMakeFiles/cats_reclaim.dir/ebr.cpp.o"
  "CMakeFiles/cats_reclaim.dir/ebr.cpp.o.d"
  "CMakeFiles/cats_reclaim.dir/hazard.cpp.o"
  "CMakeFiles/cats_reclaim.dir/hazard.cpp.o.d"
  "libcats_reclaim.a"
  "libcats_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
