# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(treap_test "/root/repo/build/tests/treap_test")
set_tests_properties(treap_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(reclaim_test "/root/repo/build/tests/reclaim_test")
set_tests_properties(reclaim_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lfca_test "/root/repo/build/tests/lfca_test")
set_tests_properties(lfca_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(structures_test "/root/repo/build/tests/structures_test")
set_tests_properties(structures_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(linearizability_test "/root/repo/build/tests/linearizability_test")
set_tests_properties(linearizability_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(chunk_test "/root/repo/build/tests/chunk_test")
set_tests_properties(chunk_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(calock_test "/root/repo/build/tests/calock_test")
set_tests_properties(calock_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(skiplist_test "/root/repo/build/tests/skiplist_test")
set_tests_properties(skiplist_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vskip_test "/root/repo/build/tests/vskip_test")
set_tests_properties(vskip_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;26;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;28;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(reclaim_extra_test "/root/repo/build/tests/reclaim_extra_test")
set_tests_properties(reclaim_extra_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;29;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(differential_test "/root/repo/build/tests/differential_test")
set_tests_properties(differential_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;30;cats_add_test;/root/repo/tests/CMakeLists.txt;0;")
