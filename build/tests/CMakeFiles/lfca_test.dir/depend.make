# Empty dependencies file for lfca_test.
# This may be replaced when dependencies are built.
