file(REMOVE_RECURSE
  "CMakeFiles/lfca_test.dir/lfca_test.cpp.o"
  "CMakeFiles/lfca_test.dir/lfca_test.cpp.o.d"
  "lfca_test"
  "lfca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
