file(REMOVE_RECURSE
  "CMakeFiles/calock_test.dir/calock_test.cpp.o"
  "CMakeFiles/calock_test.dir/calock_test.cpp.o.d"
  "calock_test"
  "calock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
