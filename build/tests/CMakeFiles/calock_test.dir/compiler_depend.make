# Empty compiler generated dependencies file for calock_test.
# This may be replaced when dependencies are built.
