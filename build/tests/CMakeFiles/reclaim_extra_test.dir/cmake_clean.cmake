file(REMOVE_RECURSE
  "CMakeFiles/reclaim_extra_test.dir/reclaim_extra_test.cpp.o"
  "CMakeFiles/reclaim_extra_test.dir/reclaim_extra_test.cpp.o.d"
  "reclaim_extra_test"
  "reclaim_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
