file(REMOVE_RECURSE
  "CMakeFiles/vskip_test.dir/vskip_test.cpp.o"
  "CMakeFiles/vskip_test.dir/vskip_test.cpp.o.d"
  "vskip_test"
  "vskip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vskip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
