# Empty dependencies file for vskip_test.
# This may be replaced when dependencies are built.
