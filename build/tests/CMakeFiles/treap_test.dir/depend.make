# Empty dependencies file for treap_test.
# This may be replaced when dependencies are built.
