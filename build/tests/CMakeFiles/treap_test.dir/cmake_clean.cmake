file(REMOVE_RECURSE
  "CMakeFiles/treap_test.dir/treap_test.cpp.o"
  "CMakeFiles/treap_test.dir/treap_test.cpp.o.d"
  "treap_test"
  "treap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
